// Declarative fault planning — the schedule half of the chaos subsystem.
//
// Megh's MDP formulation (Sec. 4) assumes every scheduled migration
// completes and every host stays up; real data centers do neither. The
// chaos layer makes failure a first-class, *reproducible* simulator input:
// a FaultPlanConfig declares per-class rates and duration distributions,
// FaultPlan::compile turns them into an explicit, seed-deterministic event
// schedule before the run starts, and the FaultInjector (fault_injector.hpp)
// replays that schedule inside the engine's step loop.
//
// Determinism contract: a plan is a pure function of
// (config, num_hosts, num_steps). It owns its own Rng stream — the
// simulation's and the policies' RNGs are never consulted — so a run under
// a fixed (seed, plan) is bit-identical at any --jobs, and a plan whose
// rates are all zero compiles to an empty schedule that leaves the engine's
// behaviour byte-for-byte unchanged. Migration aborts are the one fault
// class that cannot be scheduled ahead of time (they depend on which
// migrations a policy attempts); they are drawn through a stateless
// counter-based hash of (seed, step, ordinal), which keeps them just as
// replayable without an RNG cursor that could drift.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace megh {

/// The five fault classes of the chaos layer (ISSUE 5 / VMAgent-style
/// failure dynamics).
enum class FaultClass : std::uint8_t {
  kMigrationAbort = 0,     // a live migration fails mid-copy
  kHostFailure = 1,        // a PM crashes (powered off, VMs evacuated)
  kHostRecovery = 2,       // a crashed PM comes back
  kNetworkDegradation = 3, // fabric-wide bandwidth drops for a window
  kTraceGap = 4,           // telemetry outage: demands freeze for a window
};

const char* fault_class_name(FaultClass type);

/// One scheduled fault. host is meaningful for host failure/recovery;
/// magnitude is the bandwidth multiplier of a network degradation (in
/// (0, 1]); duration_steps spans degradation and trace-gap windows
/// ([step, step + duration_steps)).
struct FaultEvent {
  int step = 0;
  FaultClass type = FaultClass::kHostFailure;
  int host = -1;
  double magnitude = 0.0;
  int duration_steps = 0;
};

/// Declarative fault scenario: per-class rates (per-step probabilities) and
/// duration distributions, all driven by one dedicated seed. All rates
/// default to zero, i.e. "no faults". `enabled` gates whether harness
/// plumbing compiles and attaches a plan at all — an enabled plan with zero
/// rates is the decision-identity test fixture.
struct FaultPlanConfig {
  bool enabled = false;
  std::uint64_t seed = 7;

  /// Probability that an individual applied migration aborts mid-copy.
  double migration_abort_rate = 0.0;

  /// Per-host per-step crash probability, plus the uniform downtime range.
  double host_failure_rate = 0.0;
  int host_downtime_steps_min = 6;
  int host_downtime_steps_max = 24;

  /// Per-step probability a fabric-wide degradation window opens, the
  /// bandwidth multiplier applied while it lasts, and its duration range.
  double network_degradation_rate = 0.0;
  double degraded_bandwidth_factor = 0.25;
  int degradation_steps_min = 3;
  int degradation_steps_max = 12;

  /// Per-step probability a telemetry gap opens (demands freeze at the last
  /// observed column), and its duration range.
  double trace_gap_rate = 0.0;
  int trace_gap_steps_min = 1;
  int trace_gap_steps_max = 4;

  /// True when every rate is zero — the plan compiles to no events.
  bool zero_rates() const {
    return migration_abort_rate == 0.0 && host_failure_rate == 0.0 &&
           network_degradation_rate == 0.0 && trace_gap_rate == 0.0;
  }

  void validate() const;
};

/// A compiled, immutable fault schedule: events sorted by (step, class,
/// host) plus the abort-rate channel. Attach to SimulationConfig::faults.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Expand `config` into the deterministic schedule for a datacenter of
  /// `num_hosts` over `num_steps` intervals. Pure: same inputs, same plan.
  static FaultPlan compile(const FaultPlanConfig& config, int num_hosts,
                           int num_steps);

  /// Hand-built schedule (tests, scripted scenarios). Events are validated
  /// against the shape and sorted into canonical order.
  static FaultPlan from_events(std::vector<FaultEvent> events,
                               double migration_abort_rate,
                               std::uint64_t seed, int num_hosts,
                               int num_steps);

  const std::vector<FaultEvent>& events() const { return events_; }
  double migration_abort_rate() const { return migration_abort_rate_; }
  std::uint64_t seed() const { return seed_; }
  int num_hosts() const { return num_hosts_; }
  int num_steps() const { return num_steps_; }

  /// No scheduled events and a zero abort rate: attaching this plan must
  /// leave every simulation decision bit-identical to running without one.
  bool zero() const {
    return events_.empty() && migration_abort_rate_ == 0.0;
  }

  /// Stateless abort draw for the `ordinal`-th abort-eligible migration of
  /// `step` (counter-based hash — no RNG cursor, replayable in isolation).
  bool abort_migration(int step, int ordinal) const;

  /// "3 host failures, 1 degradation window, abort rate 0.1" — for logs.
  std::string summary() const;

 private:
  std::vector<FaultEvent> events_;
  double migration_abort_rate_ = 0.0;
  std::uint64_t seed_ = 0;
  int num_hosts_ = 0;
  int num_steps_ = 0;
};

namespace detail {
/// SplitMix64-based uniform in [0, 1) from a (seed, step, ordinal) triple —
/// the abort channel's stateless generator.
double hash_uniform(std::uint64_t seed, std::uint64_t step,
                    std::uint64_t ordinal);
}  // namespace detail

}  // namespace megh
