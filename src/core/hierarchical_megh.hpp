// Hierarchical two-level Megh: one pod-local LSPI learner per step shard.
//
// Flat Megh projects onto d = N × M basis vectors — at cluster scale
// (100k PMs × 1M VMs) that is d ~ 10¹¹, and even the lazily-materialized
// critic pays for it in slot-map address space and in serial decide time.
// The fat tree gives the natural factorization: a pod's VMs migrate mostly
// inside their pod (pack_local, local probes already encode this), so the
// hierarchical policy gives every shard of the step's ShardPlan — a pod on
// a fabric, a 256-host block otherwise — its own learner over the pod-local
// space d_p = cap_p × M_p, where M_p is the pod's host-range width and
// cap_p is a slotted VM capacity (current population plus headroom).
// Total learner state is Σ_p O(N_p × M_p) ≈ d / P instead of O(N × M),
// and every per-pod stage — candidate generation, Q evaluation, the LSPI
// critic update, masking, rollback, checkpoint refresh — runs in the pod
// phase, fanned across StepObservation::exec with each learner owned by
// exactly one shard (lock-free, no atomics on the learning path).
//
// A thin serial coordinator then makes the actual Boltzmann draws in a
// fixed pod-major order, arbitrating the single global migration budget
// (⌈2%·N⌉). Each draw consumes the *owning pod's* RNG stream, and every
// stream is advanced deterministically (generation in the pod phase, draws
// in the serial phase), so decisions are bit-identical at any
// SimulationConfig::jobs. On a fabric with a single (clipped) pod the
// domain spans the whole fleet, slot k is VM k, and the pod action index
// slot·M + h equals the flat basis index vm·M + h — the policy reproduces
// flat MeghPolicy's decisions bit for bit (with the default delta = 1.0;
// delta <= 0 selects δ = d_p, which differs from flat's δ = N·M).
//
// VM churn is handled by per-pod slot maps: a VM migrating into a pod
// takes the smallest free slot (departures recycle theirs), so learner
// dimensions never change at runtime. Only a VM's current pod ever writes
// its global pod/slot entries, keeping the parallel rebuild race-free.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "core/basis.hpp"
#include "core/boltzmann.hpp"
#include "core/candidates.hpp"
#include "core/lspi.hpp"
#include "core/megh_policy.hpp"
#include "sim/network.hpp"
#include "sim/policy.hpp"
#include "sim/policy_stats.hpp"

namespace megh {

struct HierarchicalMeghConfig {
  /// Learner/actor/recovery knobs, applied per pod. `base.delta <= 0`
  /// selects the paper's δ = d_p per-pod initialization.
  MeghConfig base;
  /// The fabric whose pods become the learner shards. May be null: the
  /// policy then shards over kDefaultShardHosts-sized host blocks (same
  /// fallback the step executor uses), which keeps the memory and
  /// parallelism story without a topology.
  std::shared_ptr<const FatTreeTopology> network;
  /// Slot headroom per pod: cap_p = N_p(begin) + max(min, ⌈frac·N_p⌉).
  /// A pod whose population outgrows cap_p stops offering the overflow
  /// VMs as candidates until churn frees slots (counted in
  /// `slot_overflows`); the engine can still evacuate them.
  int pod_slot_headroom_min = 16;
  double pod_slot_headroom_fraction = 0.125;
  /// Emit pod<k>.* stat keys only up to this many pods (the aggregate
  /// keys are always emitted; PolicyStats::kCapacity bounds the table).
  int per_pod_stats_limit = 16;
};

class HierarchicalMeghPolicy : public MigrationPolicy {
 public:
  explicit HierarchicalMeghPolicy(const HierarchicalMeghConfig& config = {});

  std::string name() const override { return "HierMegh"; }
  void begin(const Datacenter& dc, const CostConfig& cost,
             double interval_s) override;
  /// Hot path. The per-pod phase (membership rebuild, candidate
  /// generation, Q gather, LSPI update, weights) fans out over obs.exec
  /// when its plan matches ours; the draw coordinator stays serial.
  void decide_into(const StepObservation& obs,
                   std::vector<MigrationAction>& out) override;
  void observe_cost(double step_cost) override;
  void observe_outcomes(std::span<const MigrationOutcome> outcomes) override;
  /// Aggregates across pods under flat Megh's key names, plus "pods",
  /// "slot_overflows" and pod<k>.{qtable_nnz,lspi_updates,rollbacks}.
  /// Every key is interned at begin(); a debug build asserts that stats()
  /// itself interns nothing (the allocation-free-step guarantee).
  void stats(PolicyStats& out) const override;

  int num_pods() const { return static_cast<int>(pods_.size()); }
  const ShardPlan& plan() const { return plan_; }
  const LspiLearner& pod_learner(int pod) const;
  LspiLearner& mutable_pod_learner(int pod);
  double temperature() const { return selector_.temperature(); }

  // --- checkpointing hooks (see core/checkpoint.hpp) ---
  void set_temperature(double temp) { selector_.set_temperature(temp); }
  double cost_baseline() const { return cost_baseline_; }
  bool baseline_initialized() const { return baseline_initialized_; }
  void set_cost_baseline(double baseline, bool initialized) {
    cost_baseline_ = baseline;
    baseline_initialized_ = initialized;
  }
  /// Pod host range and slot map, read by tests and the checkpoint writer.
  int pod_host_begin(int pod) const;
  int pod_host_end(int pod) const;
  int pod_slot_capacity(int pod) const;
  /// slot → VM id (-1 = free), valid for slots < pod_slot_capacity(pod).
  std::span<const int> pod_vm_of_slot(int pod) const;

  friend void save_hierarchical_policy(const HierarchicalMeghPolicy& policy,
                                       const std::filesystem::path& path);
  friend void load_hierarchical_policy(HierarchicalMeghPolicy& policy,
                                       const std::filesystem::path& path);

 private:
  /// In-memory critic snapshot for per-pod burst rollback.
  struct CriticSnapshot {
    SparseMatrix B;
    SparseVector z;
    SparseVector theta;
    bool valid = false;
  };

  /// An aborted migration waiting to be re-requested (pod-local queue).
  struct PendingRetry {
    int vm;
    int source;
    int target;
    int due_step;
    int attempt;
  };

  /// One record per non-no-op action emitted last step, in emission order
  /// (= the engine's outcome order). pending_slot indexes the owning
  /// pod's pending list.
  struct EmittedAction {
    int vm;
    int source;
    int target;
    int pod;
    std::size_t pending_slot;
    int attempt;
  };

  /// Everything one pod owns. Mutated only by its own shard during the
  /// parallel phase and by the serial coordinator afterwards.
  struct Pod {
    int host_begin = 0;
    int host_end = 0;
    // --- slot map (VM ↔ learner row block) ---
    int cap = 0;        // slot capacity; learner dim = cap * width
    int next_slot = 0;  // slots [0, next_slot) have been handed out
    std::vector<int> vm_of_slot;  // -1 = free
    std::vector<int> free_slots;  // recycled slots, sorted descending
    std::vector<int> members;     // this step's VMs, ascending
    // --- learning state ---
    std::unique_ptr<LspiLearner> learner;
    Rng rng{0};
    std::vector<std::int64_t> pending;  // pod-local action indices
    bool staged_rollback = false;       // decided serially pre-fan-out
    // --- per-step scratch (all capacity-stable after begin) ---
    CandidateScratch cands;
    std::vector<std::int64_t> pod_idx;  // candidate → pod-local index
    std::vector<double> q;
    std::vector<double> weights;
    std::vector<std::vector<std::size_t>> candidates_of_slot;
    std::vector<int> touched_slots;
    std::vector<std::uint8_t> slot_used;
    std::vector<std::size_t> subset;
    // --- chaos recovery ---
    std::vector<PendingRetry> retries;
    CriticSnapshot checkpoint;
    int faults_last_step = 0;
    long long rollbacks = 0;
    long long masked_candidates = 0;
    long long slot_overflows = 0;
  };

  std::int64_t pod_index(const Pod& pod, int vm, int host) const {
    const std::int64_t slot = slot_of_vm_[static_cast<std::size_t>(vm)];
    MEGH_ASSERT(slot >= 0 && slot < pod.cap, "VM has no slot in its pod");
    return slot * (pod.host_end - pod.host_begin) + (host - pod.host_begin);
  }

  void rebuild_membership(Pod& pod, int pod_id, const Datacenter& dc);
  void run_pod_phase(int pod_id, const StepObservation& obs, bool do_update,
                     double share);
  void intern_stat_keys();

  HierarchicalMeghConfig config_;
  BoltzmannSelector selector_;
  std::unique_ptr<ActionBasis> basis_;  // global indices (dedup/telemetry)
  ShardPlan plan_ = ShardPlan::single(1);  // rebuilt by begin()
  std::vector<Pod> pods_;
  // vm → owning pod / slot. Written only by the VM's current pod during
  // the parallel rebuild, so concurrent pod phases never race.
  std::vector<std::int32_t> pod_of_vm_;
  std::vector<std::int32_t> slot_of_vm_;
  double beta_ = 0.7;
  int migration_budget_ = 1;

  double pending_cost_ = 0.0;
  bool has_pending_cost_ = false;
  long long total_migrations_selected_ = 0;
  double cost_baseline_ = 0.0;
  bool baseline_initialized_ = false;

  std::vector<EmittedAction> emitted_;
  int last_step_ = -1;
  long long faults_seen_ = 0;
  long long retries_issued_ = 0;

  // Stat keys, interned once at begin(). stats() only reads these.
  std::vector<StatKey> aggregate_keys_;
  std::vector<StatKey> pod_keys_;  // [pod * 3 + {nnz, updates, rollbacks}]
};

}  // namespace megh
