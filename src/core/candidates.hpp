// Candidate action generation for Megh.
//
// The projected space has d = N × M actions. For small systems Megh scores
// all of them every step; at data-center scale (800 × 1052 ≈ 841k actions)
// that would dominate the per-step time, so — mirroring the sparsity-driven
// data-structure discussion of Sec. 5.2 — the actor restricts each step's
// Boltzmann draw to a candidate set built from the situations Sec. 3.1
// describes Megh acting on:
//   * VMs on overloaded hosts (must be considered for evacuation),
//   * VMs on the least-utilized hosts (consolidation opportunities),
//   * a small random sample of other VMs (persistent exploration),
// each paired with its current host (the no-op answering "when") plus a
// sample of feasible targets including the PABFD choice.
//
// Every candidate's Q-value is still read from the full θ over d, so the
// critic is exact; only the actor's search support is sparsified.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/basis.hpp"
#include "sim/datacenter.hpp"
#include "sim/network.hpp"

namespace megh {

struct CandidateConfig {
  /// If d = N × M is at most this, enumerate every feasible action instead
  /// of sampling (exact actor).
  std::int64_t full_enumeration_limit = 1'500;

  int max_overloaded_sources = 48;  // VMs taken from overloaded hosts
  int consolidation_sources = 16;   // VMs from the least-utilized hosts
  int random_sources = 8;           // uniformly random VMs
  int targets_per_source = 6;       // sampled feasible targets per VM
  /// Post-placement utilization ceiling used when sampling targets
  /// (candidates only; the engine itself enforces nothing but RAM).
  double target_util_ceiling = 1.0;
  /// A "packing" target — the busiest active host that still fits the VM
  /// under this post-placement utilization — is offered for every source,
  /// giving the learner a consolidation move to evaluate each step.
  double pack_ceiling = 0.65;
  /// Use the fabric (when the simulation exposes one) to prefer short
  /// migration paths: in-pod packing targets and mostly-local random
  /// probes. Disable to make Megh network-oblivious (ablation).
  bool network_aware = true;
  /// When network_aware and a fabric is attached, this fraction of each
  /// source's random target probes is drawn from the source's own pod
  /// (short, fast migration paths); the rest stay global so cross-pod
  /// moves remain learnable.
  double local_probe_fraction = 0.75;
};

/// Why a candidate's source VM was selected; the actor makes one draw per
/// overloaded host (kOverloaded), one consolidation draw (kConsolidation)
/// and one global draw each step.
enum class CandidateGroup { kOverloaded, kConsolidation, kExploration };

struct CandidateAction {
  int vm = 0;
  int host = 0;               // == current host ⇒ no-op
  std::int64_t index = 0;     // flat basis index
  bool is_noop = false;
  CandidateGroup group = CandidateGroup::kExploration;
};

/// Build this step's candidate set. `host_util` is the demanded utilization
/// per host; `beta` the overload threshold. Always returns at least the
/// no-op candidates for the selected source VMs.
std::vector<CandidateAction> generate_candidates(
    const Datacenter& dc, std::span<const double> host_util, double beta,
    const ActionBasis& basis, const CandidateConfig& config, Rng& rng,
    const FatTreeTopology* network = nullptr);

}  // namespace megh
