// Candidate action generation for Megh.
//
// The projected space has d = N × M actions. For small systems Megh scores
// all of them every step; at data-center scale (800 × 1052 ≈ 841k actions)
// that would dominate the per-step time, so — mirroring the sparsity-driven
// data-structure discussion of Sec. 5.2 — the actor restricts each step's
// Boltzmann draw to a candidate set built from the situations Sec. 3.1
// describes Megh acting on:
//   * VMs on overloaded hosts (must be considered for evacuation),
//   * VMs on the least-utilized hosts (consolidation opportunities),
//   * a small random sample of other VMs (persistent exploration),
// each paired with its current host (the no-op answering "when") plus a
// sample of feasible targets including the PABFD choice.
//
// Every candidate's Q-value is still read from the full θ over d, so the
// critic is exact; only the actor's search support is sparsified.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/basis.hpp"
#include "sim/datacenter.hpp"
#include "sim/network.hpp"

namespace megh {

struct CandidateConfig {
  /// If d = N × M is at most this, enumerate every feasible action instead
  /// of sampling (exact actor).
  std::int64_t full_enumeration_limit = 1'500;

  int max_overloaded_sources = 48;  // VMs taken from overloaded hosts
  int consolidation_sources = 16;   // VMs from the least-utilized hosts
  int random_sources = 8;           // uniformly random VMs
  int targets_per_source = 6;       // sampled feasible targets per VM
  /// Post-placement utilization ceiling used when sampling targets
  /// (candidates only; the engine itself enforces nothing but RAM).
  double target_util_ceiling = 1.0;
  /// A "packing" target — the busiest active host that still fits the VM
  /// under this post-placement utilization — is offered for every source,
  /// giving the learner a consolidation move to evaluate each step.
  double pack_ceiling = 0.65;
  /// Use the fabric (when the simulation exposes one) to prefer short
  /// migration paths: in-pod packing targets and mostly-local random
  /// probes. Disable to make Megh network-oblivious (ablation).
  bool network_aware = true;
  /// When network_aware and a fabric is attached, this fraction of each
  /// source's random target probes is drawn from the source's own pod
  /// (short, fast migration paths); the rest stay global so cross-pod
  /// moves remain learnable.
  double local_probe_fraction = 0.75;
};

/// Restriction of candidate generation to a sub-fleet: one contiguous host
/// range plus the VMs currently placed on it. The hierarchical per-pod
/// Megh runs each pod's generation through the same code path flat Megh
/// uses for the whole fleet — sources, scan ranges, random probes and full
/// enumeration all stay inside [host_begin, host_end), and the caller's
/// Rng is the pod's own stream. A domain spanning the entire fleet (with
/// `vms` = every VM ascending and vm_slot[v] == v) consumes the Rng
/// identically to a domain-free call and produces the same candidate set
/// when the fabric has at most one pod.
struct CandidateDomain {
  int host_begin = 0;
  int host_end = 0;  // exclusive
  /// VMs eligible as sources / enumeration rows: ascending global ids of
  /// every VM currently hosted inside the range.
  std::span<const int> vms;
  /// vm → dense per-domain slot (< slot_capacity) for the epoch-stamp
  /// dedup array. Fleet-sized and shared across domains; only entries of
  /// `vms` are read.
  std::span<const std::int32_t> vm_slot;
  int slot_capacity = 0;
};

/// Why a candidate's source VM was selected; the actor makes one draw per
/// overloaded host (kOverloaded), one consolidation draw (kConsolidation)
/// and one global draw each step.
enum class CandidateGroup { kOverloaded, kConsolidation, kExploration };

struct CandidateAction {
  int vm = 0;
  int host = 0;               // == current host ⇒ no-op
  std::int64_t index = 0;     // flat basis index
  bool is_noop = false;
  CandidateGroup group = CandidateGroup::kExploration;
};

namespace detail {

/// Insert-only set of non-negative int64 keys on an open-addressing table
/// whose storage is reused across steps — the allocation-free stand-in for
/// the unordered_set that used to dedup candidate action indices (a node
/// allocation per insert). Grows only when an epoch's insert count exceeds
/// every previous epoch's, so steady-state steps never touch the heap.
class InsertOnlyIndexSet {
 public:
  /// Start a new epoch sized for about `expected` inserts.
  void reset(std::size_t expected);

  /// True when `key` (>= 0) was not yet inserted this epoch.
  bool insert(std::int64_t key);

 private:
  void rehash(std::size_t min_slots);

  std::vector<std::int64_t> slots_;  // -1 = empty
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace detail

/// Reusable working storage for generate_candidates. One instance per
/// policy, carried across steps: every container keeps its capacity, so a
/// steady-state call performs no heap allocation. `candidates` holds the
/// result of the most recent call.
struct CandidateScratch {
  std::vector<CandidateAction> candidates;
  std::vector<std::pair<int, CandidateGroup>> sources;
  std::vector<int> overloaded_hosts;
  std::vector<int> active_hosts;
  // Per-VM "already a source" stamps: vm_epoch[vm] == epoch ⇔ seen. An
  // epoch bump invalidates all stamps in O(1).
  std::vector<std::uint32_t> vm_epoch;
  std::uint32_t epoch = 0;
  detail::InsertOnlyIndexSet index_seen;
  // Step-constant per-host values hoisted out of the per-(source, host)
  // scans. Each is filled from the same Datacenter accessor expression the
  // scans used to evaluate inline, so feasibility and PABFD decisions stay
  // bit-identical — this only removes repeated HostSpec indirection and the
  // per-source recomputation of watts(before).
  std::vector<double> host_capacity;
  std::vector<double> host_ram_used;
  std::vector<double> host_ram_cap;
  std::vector<double> host_base_watts;
  std::vector<const PowerModel*> host_power;
  std::vector<std::uint8_t> host_active;
  /// One fold state per (shard, source) for the batched PABFD/packing
  /// scans: each shard folds its contiguous host range for every source,
  /// and a serial merge in shard order reproduces the full-range fold
  /// bit-for-bit (both folds are strict-preference argopt with first-wins
  /// ties — see generate_candidates). Laid out [shard * num_sources + k]
  /// so a shard writes one contiguous block (no false sharing).
  struct ScanPartial {
    int pabfd = -1;             // best PABFD target in the shard, -1 = none
    double pabfd_increase = 0.0;
    bool pabfd_active = false;
    int pack = -1;              // busiest feasible packing host in the shard
    int pack_local = -1;        // same, restricted to the source's pod
    double pack_util = -1.0;
    double pack_local_util = -1.0;
  };
  std::vector<ScanPartial> scan_partials;
  // Per-source values hoisted before the sharded scans (shards must not
  // call back into dc concurrently with each other only for writes; these
  // are reads, hoisting just keeps the inner loops tight).
  std::vector<int> src_current;
  std::vector<double> src_ram;
  std::vector<double> src_mips;
  // Per-source merged scan results consumed by the emission loop.
  std::vector<int> pabfd_choice;
  std::vector<int> pack_choice;
  /// Cached single-shard plan for unsharded callers (exec == nullptr), so
  /// their steady-state calls stay allocation-free too.
  std::optional<ShardPlan> fallback_plan;
};

/// Build this step's candidate set into `scratch.candidates` (overwritten).
/// `host_util` is the demanded utilization per host; `beta` the overload
/// threshold. Always produces at least the no-op candidates for the
/// selected source VMs. Steady-state calls are allocation-free.
///
/// `exec` (optional) shards the per-host PABFD/packing scans across the
/// engine's step executor. The candidate set is bit-identical at any job
/// count — and to an exec == nullptr call: every scan is an RNG-free
/// strict-preference fold whose per-shard partials merge exactly, source
/// selection and the random target probes stay serial in the original
/// order, so the RNG stream is consumed identically.
///
/// `domain` (optional) restricts generation to a sub-fleet (see
/// CandidateDomain). Domain calls never touch `exec` — they already run
/// inside one of its shard workers — and every per-host scratch array is
/// sized to the domain's width, so a pod-local scratch costs O(pod), not
/// O(fleet). The full-enumeration gate compares |domain.vms| × width
/// (the domain's reachable action count) against the limit.
void generate_candidates(const Datacenter& dc,
                         std::span<const double> host_util, double beta,
                         const ActionBasis& basis,
                         const CandidateConfig& config, Rng& rng,
                         CandidateScratch& scratch,
                         const FatTreeTopology* network = nullptr,
                         const ShardExecutor* exec = nullptr,
                         const CandidateDomain* domain = nullptr);

/// Convenience wrapper (tests, one-shot callers): fresh scratch per call.
std::vector<CandidateAction> generate_candidates(
    const Datacenter& dc, std::span<const double> host_util, double beta,
    const ActionBasis& basis, const CandidateConfig& config, Rng& rng,
    const FatTreeTopology* network = nullptr);

}  // namespace megh
