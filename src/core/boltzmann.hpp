// Boltzmann exploration with decaying temperature — the paper's
// PolicyCalculator (Algorithm 2, Sec. 5.1).
//
// Given candidate actions' Q-values (estimated costs-to-go, lower = better),
// each action i receives weight exp(−(Q_i − min Q)/Temp). The temperature
// starts at Temp₀ and decays by exp(−ε) every step, moving the policy from
// exploration toward greedy exploitation (Sec. 6.1 defaults: Temp₀ = 3,
// ε = 0.01; Sec. 6.5 sweeps both).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace megh {

class BoltzmannSelector {
 public:
  BoltzmannSelector(double temp0, double epsilon);

  /// Selection weights for the given Q-values (unnormalized, in [0, 1]).
  std::vector<double> weights(std::span<const double> q_values) const;

  /// Allocation-free variant: `out` is cleared and refilled in place, so a
  /// caller reusing the buffer across steps never touches the heap once
  /// its capacity has grown to the candidate-set size.
  void weights(std::span<const double> q_values,
               std::vector<double>& out) const;

  /// Sample one index proportionally to weights(). Falls back to the
  /// greedy minimum if every weight underflows.
  std::size_t sample(std::span<const double> q_values, Rng& rng) const;

  /// Index of the minimum Q-value (the greedy choice).
  static std::size_t greedy(std::span<const double> q_values);

  /// Temp ← Temp · exp(−ε), called once per step (Algorithm 2 line 2).
  void decay();

  double temperature() const { return temp_; }

  /// Overwrite the current temperature (checkpoint restore).
  void set_temperature(double temp) {
    MEGH_REQUIRE(temp > 0.0, "temperature must be positive");
    temp_ = temp;
  }
  double epsilon() const { return epsilon_; }

 private:
  double temp_;
  double epsilon_;
};

}  // namespace megh
