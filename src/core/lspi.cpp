#include "core/lspi.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace megh {

LspiLearner::LspiLearner(std::int64_t dim, double gamma, double delta,
                         int max_update_support)
    : dim_(dim),
      gamma_(gamma),
      max_update_support_(max_update_support),
      B_(dim, 0.0),
      z_(dim),
      theta_(dim) {
  MEGH_REQUIRE(dim > 0, "LSPI dimension must be positive");
  MEGH_REQUIRE(gamma >= 0.0 && gamma < 1.0, "gamma must lie in [0, 1)");
  MEGH_REQUIRE(max_update_support >= 0,
               "max_update_support must be non-negative");
  const double d = delta > 0.0 ? delta : static_cast<double>(dim);
  B_ = SparseMatrix(dim, 1.0 / d);
}

void LspiLearner::truncate_support(SparseVector& v, std::int64_t keep1,
                                   std::int64_t keep2) {
  if (max_update_support_ <= 0 ||
      v.nnz() <= static_cast<std::size_t>(max_update_support_)) {
    return;
  }
  ++truncations_;
  // Keep the largest-magnitude entries; the action indices themselves
  // (keep1/keep2) are always retained so the denominator stays exact.
  std::vector<std::pair<std::int64_t, double>> entries(v.entries().begin(),
                                                       v.entries().end());
  const std::size_t keep = static_cast<std::size_t>(max_update_support_);
  std::nth_element(entries.begin(),
                   entries.begin() + static_cast<std::ptrdiff_t>(keep),
                   entries.end(), [](const auto& a, const auto& b) {
                     return std::abs(a.second) > std::abs(b.second);
                   });
  SparseVector out(v.dim());
  for (std::size_t i = 0; i < keep; ++i) {
    out.set(entries[i].first, entries[i].second);
  }
  out.set(keep1, v.get(keep1));
  out.set(keep2, v.get(keep2));
  v = std::move(out);
}

void LspiLearner::update(std::int64_t a, double cost, std::int64_t b) {
  MEGH_ASSERT(a >= 0 && a < dim_ && b >= 0 && b < dim_,
              "LSPI update: action index out of range");
  MEGH_TRACE_SCOPE("lspi.update");
  // Registered once; afterwards each increment is a relaxed atomic add.
  static Counter& rank1_counter =
      Telemetry::instance().counter("lspi.rank1_updates");
  static Counter& singular_counter =
      Telemetry::instance().counter("lspi.singular_skips");
  static Counter& truncation_counter =
      Telemetry::instance().counter("lspi.truncations");
  static Gauge& fill_gauge =
      Telemetry::instance().gauge("lspi.b_offdiag_nnz");
  ++updates_;

  // u = B e_a (column a), w = (e_a − γ e_b)ᵀ B (row a minus γ·row b).
  SparseVector u = B_.col(a);
  SparseVector w = B_.row(a);
  w.axpy(-gamma_, B_.row(b));
  const long long truncations_before = truncations_;
  truncate_support(u, a, b);
  truncate_support(w, a, b);
  truncation_counter.add(truncations_ - truncations_before);

  // Denominator: 1 + (e_a − γ e_b)ᵀ B e_a = 1 + u[a] − γ u[b].
  const double denom = 1.0 + u.get(a) - gamma_ * u.get(b);

  // z ← z + C e_a  and incremental θ:
  //   θ' = B'z' = θ + C·u − u·(w·z')/denom     (see lspi.hpp header)
  z_.add(a, cost);
  if (std::abs(denom) < 1e-12) {
    // Singular update: keep B as-is (θ' = B z' = θ + C·u).
    ++singular_skips_;
    singular_counter.add(1);
    theta_.axpy(cost, u);
    return;
  }
  const double wz = w.dot(z_);
  theta_.axpy(cost - wz / denom, u);

  // B ← B − u wᵀ / denom.
  B_.rank1_update(u, w, -1.0 / denom);
  rank1_counter.add(1);
  fill_gauge.set(static_cast<double>(B_.offdiag_nnz()));
}

void LspiLearner::restore(SparseMatrix b, SparseVector z,
                          SparseVector theta) {
  MEGH_REQUIRE(b.dim() == dim_ && z.dim() == dim_ && theta.dim() == dim_,
               "LspiLearner::restore: shape mismatch");
  B_ = std::move(b);
  z_ = std::move(z);
  theta_ = std::move(theta);
  updates_ = 0;
  singular_skips_ = 0;
}

}  // namespace megh
