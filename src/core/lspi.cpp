#include "core/lspi.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/prefetch.hpp"
#include "telemetry/telemetry.hpp"

namespace megh {

LspiLearner::LspiLearner(std::int64_t dim, double gamma, double delta,
                         int max_update_support)
    : dim_(dim),
      gamma_(gamma),
      max_update_support_(max_update_support),
      u_scratch_(dim > 0 ? dim : 0),
      w_scratch_(dim > 0 ? dim : 0),
      row_b_scratch_(dim > 0 ? dim : 0) {
  MEGH_REQUIRE(dim > 0, "LSPI dimension must be positive");
  MEGH_REQUIRE(gamma >= 0.0 && gamma < 1.0, "gamma must lie in [0, 1)");
  MEGH_REQUIRE(max_update_support >= 0,
               "max_update_support must be non-negative");
  const double d = delta > 0.0 ? delta : static_cast<double>(dim);
  B_ = SparseMatrix(dim, 1.0 / d);
  slot_of_ = ZeroLazyBuffer<std::int32_t>(static_cast<std::size_t>(dim));
}

void LspiLearner::slot_add(double& slot, std::size_t& nnz, double v) {
  const bool was_nonzero = slot != 0.0;
  double next = slot + v;
  if (std::abs(next) < SparseVector::kZeroTolerance) next = 0.0;
  if (was_nonzero && next == 0.0) --nnz;
  if (!was_nonzero && next != 0.0) ++nnz;
  slot = next;
}

void LspiLearner::theta_axpy(double coef, const SparseVector& sparse) {
  if (coef == 0.0) return;
  const std::span<const std::int64_t> idx = sparse.indices();
  const std::span<const double> val = sparse.values();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    slot_add(slot(idx[k]).theta, theta_nnz_, coef * val[k]);
  }
}

namespace {

/// Gather one field of the compact slots into a SparseVector in ascending
/// index order (slots pack in touch order, SparseVector wants sorted).
template <typename Field>
SparseVector gather_slots(std::int64_t dim,
                          std::span<const std::int64_t> index_of_slot,
                          Field&& field) {
  std::vector<std::pair<std::int64_t, double>> live;
  live.reserve(index_of_slot.size());
  for (std::size_t s = 0; s < index_of_slot.size(); ++s) {
    const double v = field(s);
    if (v != 0.0) live.emplace_back(index_of_slot[s], v);
  }
  std::sort(live.begin(), live.end());
  SparseVector out(dim);
  out.reserve(live.size());
  for (const auto& [i, v] : live) out.push_back(i, v);
  return out;
}

}  // namespace

SparseVector LspiLearner::theta() const {
  return gather_slots(dim_, index_of_slot_,
                      [&](std::size_t s) { return slots_[s].theta; });
}

SparseVector LspiLearner::z() const {
  return gather_slots(dim_, index_of_slot_,
                      [&](std::size_t s) { return slots_[s].z; });
}

void LspiLearner::truncate_support(SparseVector& v, std::int64_t keep1,
                                   std::int64_t keep2) {
  if (max_update_support_ <= 0 ||
      v.nnz() <= static_cast<std::size_t>(max_update_support_)) {
    return;
  }
  ++truncations_;
  // Keep the largest-magnitude entries; the action indices themselves
  // (keep1/keep2) are always retained so the denominator stays exact.
  const double kept1 = v.get(keep1);
  const double kept2 = v.get(keep2);
  trunc_scratch_.clear();
  trunc_scratch_.reserve(v.nnz());
  const std::span<const std::int64_t> idx = v.indices();
  const std::span<const double> val = v.values();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    trunc_scratch_.emplace_back(idx[k], val[k]);
  }
  const std::size_t keep = static_cast<std::size_t>(max_update_support_);
  // Ties broken toward the smaller index so the kept set is a
  // deterministic function of the factor's values — replay and
  // checkpoint-resume runs truncate identically.
  std::nth_element(trunc_scratch_.begin(),
                   trunc_scratch_.begin() + static_cast<std::ptrdiff_t>(keep),
                   trunc_scratch_.end(), [](const auto& a, const auto& b) {
                     const double ma = std::abs(a.second);
                     const double mb = std::abs(b.second);
                     if (ma != mb) return ma > mb;
                     return a.first < b.first;
                   });
  trunc_scratch_.resize(keep);
  bool has1 = false, has2 = false;
  for (const auto& [i, value] : trunc_scratch_) {
    if (i == keep1) has1 = true;
    if (i == keep2) has2 = true;
  }
  // Stored entries always have magnitude >= tolerance, so a nonzero read
  // means the index was present in v.
  if (!has1 && kept1 != 0.0) trunc_scratch_.emplace_back(keep1, kept1);
  if (!has2 && keep2 != keep1 && kept2 != 0.0) {
    trunc_scratch_.emplace_back(keep2, kept2);
  }
  std::sort(trunc_scratch_.begin(), trunc_scratch_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  v.clear();
  for (const auto& [i, value] : trunc_scratch_) v.push_back(i, value);
}

bool LspiLearner::update_fused(std::int64_t a, double cost, std::int64_t b,
                               const SparseVector& row_b) {
  // Registered once; afterwards each increment is a relaxed atomic add.
  static Counter& rank1_counter =
      Telemetry::instance().counter("lspi.rank1_updates");
  static Counter& singular_counter =
      Telemetry::instance().counter("lspi.singular_skips");
  static Counter& truncation_counter =
      Telemetry::instance().counter("lspi.truncations");
  static Gauge& fill_gauge =
      Telemetry::instance().gauge("lspi.b_offdiag_nnz");
  ++updates_;

  // Kick off the kernel's independent random loads together: the slot-map
  // entries at a and b plus B's row/column map entries — the only d-sized
  // arrays left on the path. The kernel is latency-bound on these misses;
  // overlapping them is most of the cost.
  MEGH_PREFETCH(slot_of_.data() + a);
  if (b != a) MEGH_PREFETCH(slot_of_.data() + b);
  B_.prefetch_unit_update(a, b);

  // u = B e_a (column a), w = (e_a − γ e_b)ᵀ B (row a minus γ·row b) —
  // both extracted into flat sorted scratch, merged in place.
  B_.col_into(a, u_scratch_);
  B_.row_into(a, w_scratch_);
  w_scratch_.axpy(-gamma_, row_b);
  const long long truncations_before = truncations_;
  truncate_support(u_scratch_, a, b);
  truncate_support(w_scratch_, a, b);
  truncation_counter.add(truncations_ - truncations_before);

  // Denominator: 1 + (e_a − γ e_b)ᵀ B e_a = 1 + u[a] − γ u[b].
  const double denom = 1.0 + u_scratch_.get(a) - gamma_ * u_scratch_.get(b);

  // z ← z + C e_a  and incremental θ:
  //   θ' = B'z' = θ + C·u − u·(w·z')/denom     (see lspi.hpp header)
  slot_add(slot(a).z, z_nnz_, cost);
  if (std::abs(denom) < 1e-12) {
    // Singular update: keep B as-is (θ' = B z' = θ + C·u).
    ++singular_skips_;
    singular_counter.add(1);
    theta_axpy(cost, u_scratch_);
    return false;
  }
  // w·z streams w's sorted support against the accumulator slots (virgin
  // map entries read as zero without materializing).
  double wz = 0.0;
  {
    const std::span<const std::int64_t> widx = w_scratch_.indices();
    const std::span<const double> wval = w_scratch_.values();
    for (std::size_t k = 0; k < widx.size(); ++k) {
      wz += wval[k] * slot_z(widx[k]);
    }
  }
  theta_axpy(cost - wz / denom, u_scratch_);

  // B ← B − u wᵀ / denom. The rank-1 touches exactly the rows in supp(u);
  // the caller's cached row b stays valid unless u[b] ≠ 0.
  const bool touches_row_b = u_scratch_.get(b) != 0.0;
  B_.rank1_update(u_scratch_, w_scratch_, -1.0 / denom);
  rank1_counter.add(1);
  fill_gauge.set(static_cast<double>(B_.offdiag_nnz()));
  return touches_row_b;
}

void LspiLearner::update(std::int64_t a, double cost, std::int64_t b) {
  const std::int64_t actions[1] = {a};
  update_batch(std::span<const std::int64_t>(actions, 1), cost, b);
}

void LspiLearner::update_batch(std::span<const std::int64_t> actions,
                               double cost, std::int64_t b) {
  if (actions.empty()) return;
  MEGH_ASSERT(b >= 0 && b < dim_,
              "LSPI update: next-action index out of range");
  MEGH_TRACE_SCOPE("lspi.update");
  // Issue the first transition's prefetches before extracting row b, so
  // the b-row map miss overlaps with the a-side misses instead of
  // serializing ahead of them.
  MEGH_PREFETCH(slot_of_.data() + actions[0]);
  if (b != actions[0]) MEGH_PREFETCH(slot_of_.data() + b);
  B_.prefetch_unit_update(actions[0], b);
  bool row_b_valid = false;
  for (std::size_t k = 0; k < actions.size(); ++k) {
    const std::int64_t a = actions[k];
    MEGH_ASSERT(a >= 0 && a < dim_, "LSPI update: action index out of range");
    if (k + 1 < actions.size()) {
      // Software-pipeline the batch: start the next action's random loads
      // while this one computes.
      MEGH_PREFETCH(slot_of_.data() + actions[k + 1]);
      B_.prefetch_unit_update(actions[k + 1], b);
    }
    if (!row_b_valid) {
      B_.row_into(b, row_b_scratch_);
      row_b_valid = true;
    }
    if (update_fused(a, cost, b, row_b_scratch_)) row_b_valid = false;
  }
}

void LspiLearner::restore(SparseMatrix b, SparseVector z,
                          SparseVector theta) {
  MEGH_REQUIRE(b.dim() == dim_ && z.dim() == dim_ && theta.dim() == dim_,
               "LspiLearner::restore: shape mismatch");
  B_ = std::move(b);
  // Fresh lazily-zeroed map instead of a dense O(d) fill; slots rebuild
  // from the checkpointed support only.
  slot_of_ = ZeroLazyBuffer<std::int32_t>(static_cast<std::size_t>(dim_));
  slots_.clear();
  index_of_slot_.clear();
  z_nnz_ = 0;
  theta_nnz_ = 0;
  for (const auto& [i, value] : z.entries()) {
    slot(i).z = value;
    if (value != 0.0) ++z_nnz_;
  }
  for (const auto& [i, value] : theta.entries()) {
    slot(i).theta = value;
    if (value != 0.0) ++theta_nnz_;
  }
  updates_ = 0;
  singular_skips_ = 0;
  truncations_ = 0;
}

}  // namespace megh
