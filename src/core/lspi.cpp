#include "core/lspi.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/prefetch.hpp"
#include "linalg/simd/simd.hpp"
#include "telemetry/telemetry.hpp"

namespace megh {

LspiLearner::LspiLearner(std::int64_t dim, double gamma, double delta,
                         int max_update_support)
    : dim_(dim),
      gamma_(gamma),
      max_update_support_(max_update_support),
      fast_path_ok_(max_update_support == 0 || max_update_support >= 2),
      rank1_counter_(&Telemetry::instance().counter("lspi.rank1_updates")),
      singular_counter_(
          &Telemetry::instance().counter("lspi.singular_skips")),
      truncation_counter_(
          &Telemetry::instance().counter("lspi.truncations")),
      fill_gauge_(&Telemetry::instance().gauge("lspi.b_offdiag_nnz")),
      u_scratch_(dim > 0 ? dim : 0),
      w_scratch_(dim > 0 ? dim : 0),
      row_b_scratch_(dim > 0 ? dim : 0) {
  MEGH_REQUIRE(dim > 0, "LSPI dimension must be positive");
  MEGH_REQUIRE(gamma >= 0.0 && gamma < 1.0, "gamma must lie in [0, 1)");
  MEGH_REQUIRE(max_update_support >= 0,
               "max_update_support must be non-negative");
  const double d = delta > 0.0 ? delta : static_cast<double>(dim);
  B_ = SparseMatrix(dim, 1.0 / d);
  slot_of_ = ZeroLazyBuffer<std::int32_t>(static_cast<std::size_t>(dim));
}

void LspiLearner::slot_add(double& slot, std::size_t& nnz, double v) {
  const bool was_nonzero = slot != 0.0;
  double next = slot + v;
  if (std::abs(next) < SparseVector::kZeroTolerance) next = 0.0;
  if (was_nonzero && next == 0.0) --nnz;
  if (!was_nonzero && next != 0.0) ++nnz;
  slot = next;
}

void LspiLearner::theta_axpy(double coef, const SparseVector& sparse) {
  if (coef == 0.0) return;
  const std::span<const std::int64_t> idx = sparse.indices();
  const std::span<const double> val = sparse.values();
  // The kernel applies the run of already-materialized slots (its vector
  // variants gather the map entries four/eight at a time so the random
  // misses overlap) and stops at the first virgin slot, which only this
  // class can materialize; re-enter after each materialization. Updates
  // land in index order either way — bit-identical to the plain loop.
  const simd::Ops& ops = simd::ops();
  std::size_t k = 0;
  while (k < idx.size()) {
    const simd::SlotAxpyResult r = ops.slot_theta_axpy(
        idx.data() + k, val.data() + k, idx.size() - k, coef,
        slot_of_.data(), reinterpret_cast<double*>(slots_.data()));
    theta_nnz_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(theta_nnz_) + r.nnz_delta);
    k += r.processed;
    if (k < idx.size()) {
      slot_add(slot(idx[k]).theta, theta_nnz_, coef * val[k]);
      ++k;
    }
  }
}

namespace {

/// Gather one field of the compact slots into a SparseVector in ascending
/// index order (slots pack in touch order, SparseVector wants sorted).
template <typename Field>
SparseVector gather_slots(std::int64_t dim,
                          std::span<const std::int64_t> index_of_slot,
                          Field&& field) {
  std::vector<std::pair<std::int64_t, double>> live;
  live.reserve(index_of_slot.size());
  for (std::size_t s = 0; s < index_of_slot.size(); ++s) {
    const double v = field(s);
    if (v != 0.0) live.emplace_back(index_of_slot[s], v);
  }
  std::sort(live.begin(), live.end());
  SparseVector out(dim);
  out.reserve(live.size());
  for (const auto& [i, v] : live) out.push_back(i, v);
  return out;
}

}  // namespace

SparseVector LspiLearner::theta() const {
  return gather_slots(dim_, index_of_slot_,
                      [&](std::size_t s) { return slots_[s].theta; });
}

SparseVector LspiLearner::z() const {
  return gather_slots(dim_, index_of_slot_,
                      [&](std::size_t s) { return slots_[s].z; });
}

void LspiLearner::truncate_support(SparseVector& v, std::int64_t keep1,
                                   std::int64_t keep2) {
  if (max_update_support_ <= 0 ||
      v.nnz() <= static_cast<std::size_t>(max_update_support_)) {
    return;
  }
  ++truncations_;
  // Keep the largest-magnitude entries; the action indices themselves
  // (keep1/keep2) are always retained so the denominator stays exact.
  const double kept1 = v.get(keep1);
  const double kept2 = v.get(keep2);
  trunc_scratch_.clear();
  trunc_scratch_.reserve(v.nnz());
  const std::span<const std::int64_t> idx = v.indices();
  const std::span<const double> val = v.values();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    trunc_scratch_.emplace_back(idx[k], val[k]);
  }
  const std::size_t keep = static_cast<std::size_t>(max_update_support_);
  // Ties broken toward the smaller index so the kept set is a
  // deterministic function of the factor's values — replay and
  // checkpoint-resume runs truncate identically.
  std::nth_element(trunc_scratch_.begin(),
                   trunc_scratch_.begin() + static_cast<std::ptrdiff_t>(keep),
                   trunc_scratch_.end(), [](const auto& a, const auto& b) {
                     const double ma = std::abs(a.second);
                     const double mb = std::abs(b.second);
                     if (ma != mb) return ma > mb;
                     return a.first < b.first;
                   });
  trunc_scratch_.resize(keep);
  bool has1 = false, has2 = false;
  for (const auto& [i, value] : trunc_scratch_) {
    if (i == keep1) has1 = true;
    if (i == keep2) has2 = true;
  }
  // Stored entries always have magnitude >= tolerance, so a nonzero read
  // means the index was present in v.
  if (!has1 && kept1 != 0.0) trunc_scratch_.emplace_back(keep1, kept1);
  if (!has2 && keep2 != keep1 && kept2 != 0.0) {
    trunc_scratch_.emplace_back(keep2, kept2);
  }
  std::sort(trunc_scratch_.begin(), trunc_scratch_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  v.clear();
  for (const auto& [i, value] : trunc_scratch_) v.push_back(i, value);
}

bool LspiLearner::update_fused(std::int64_t a, double cost, std::int64_t b,
                               const SparseVector& row_b) {
  ++updates_;

  // Kick off the kernel's independent random loads together: the slot-map
  // entries at a and b plus B's row/column map entries — the only d-sized
  // arrays left on the path. The kernel is latency-bound on these misses;
  // overlapping them is most of the cost.
  MEGH_PREFETCH(slot_of_.data() + a);
  if (b != a) MEGH_PREFETCH(slot_of_.data() + b);
  B_.prefetch_unit_update(a, b);

  // Steady state: with the paper's δ = d initialization the rank-1
  // off-diagonal products sit below the zero tolerance and B stays
  // diagonal, so u and w have at most 1 and 2 entries and the whole
  // update reduces to a handful of scalar ops (update_fused_diagonal).
  double diag_a = 0.0;
  if (fast_path_ok_ && !force_general_ && row_b.nnz() <= 1 &&
      B_.diagonal_only(a, &diag_a) &&
      std::abs(diag_a) >= SparseVector::kZeroTolerance) {
    return update_fused_diagonal(a, cost, b, row_b, diag_a);
  }

  // u = B e_a (column a), w = (e_a − γ e_b)ᵀ B (row a minus γ·row b) —
  // both extracted into flat sorted scratch, merged in place.
  B_.col_into(a, u_scratch_);
  B_.row_into(a, w_scratch_);
  w_scratch_.axpy(-gamma_, row_b);
  const long long truncations_before = truncations_;
  truncate_support(u_scratch_, a, b);
  truncate_support(w_scratch_, a, b);
  truncation_counter_->add(truncations_ - truncations_before);

  // Denominator: 1 + (e_a − γ e_b)ᵀ B e_a = 1 + u[a] − γ u[b].
  const double denom = 1.0 + u_scratch_.get(a) - gamma_ * u_scratch_.get(b);

  // z ← z + C e_a  and incremental θ:
  //   θ' = B'z' = θ + C·u − u·(w·z')/denom     (see lspi.hpp header)
  slot_add(slot(a).z, z_nnz_, cost);
  if (std::abs(denom) < 1e-12) {
    // Singular update: keep B as-is (θ' = B z' = θ + C·u).
    ++singular_skips_;
    singular_counter_->add(1);
    theta_axpy(cost, u_scratch_);
    return false;
  }
  // w·z streams w's sorted support against the accumulator slots (virgin
  // map entries read as zero without materializing); the vector variants
  // gather the map entries and z payloads in parallel.
  const double wz = simd::ops().slot_gather_dot(
      w_scratch_.indices().data(), w_scratch_.values().data(),
      w_scratch_.nnz(), slot_of_.data(),
      reinterpret_cast<const double*>(slots_.data()));
  theta_axpy(cost - wz / denom, u_scratch_);

  // B ← B − u wᵀ / denom. The rank-1 touches exactly the rows in supp(u);
  // the caller's cached row b stays valid unless u[b] ≠ 0.
  const bool touches_row_b = u_scratch_.get(b) != 0.0;
  B_.rank1_update(u_scratch_, w_scratch_, -1.0 / denom);
  rank1_counter_->add(1);
  fill_gauge_->set(static_cast<double>(B_.offdiag_nnz()));
  return touches_row_b;
}

bool LspiLearner::update_fused_diagonal(std::int64_t a, double cost,
                                        std::int64_t b,
                                        const SparseVector& row_b,
                                        double diag_a) {
  // Every expression below keeps the exact shape of the operation the
  // general path would perform on the same state, so the two paths are
  // bit-identical (the forced-general equivalence test pins this down).
  //
  // u = B e_a = {a: diag_a} (col a is diagonal-only). No truncation:
  // supports 1 and 2 are within every max_update_support this path
  // accepts (fast_path_ok_).
  //
  // w = row(a) − γ·row(b) = {a: diag_a} axpy'd with row_b's single entry;
  // mirror SparseVector::axpy's merge: an index collision sums in place
  // (kept at |·| >= tolerance), a disjoint entry lands scaled and is
  // pruned when |−γ| < 1 leaves it below tolerance (γ < 1 always here).
  SparseMatrix::Entry w[2];
  std::size_t wn = 0;
  std::int64_t ib = 0;
  double vb = 0.0;
  bool have_b = false;
  if (gamma_ != 0.0 && row_b.nnz() == 1) {
    ib = row_b.indices()[0];
    vb = row_b.values()[0];
    have_b = true;
  }
  if (have_b && ib == a) {
    const double nv = diag_a + -gamma_ * vb;
    if (std::abs(nv) >= SparseVector::kZeroTolerance) {
      w[wn++] = SparseMatrix::Entry{a, nv};
    }
  } else {
    if (have_b) {
      const double nv = -gamma_ * vb;
      if (std::abs(nv) >= SparseVector::kZeroTolerance) {
        vb = nv;
      } else {
        have_b = false;
      }
    }
    if (have_b && ib < a) w[wn++] = SparseMatrix::Entry{ib, vb};
    w[wn++] = SparseMatrix::Entry{a, diag_a};
    if (have_b && ib > a) w[wn++] = SparseMatrix::Entry{ib, vb};
  }

  // Denominator: 1 + u[a] − γ u[b] with u = {a: diag_a}.
  const double u_b = b == a ? diag_a : 0.0;
  const double denom = 1.0 + diag_a - gamma_ * u_b;

  slot_add(slot(a).z, z_nnz_, cost);
  if (std::abs(denom) < 1e-12) {
    // Singular update: keep B as-is (θ' = B z' = θ + C·u); θ axpy over
    // u's single entry, skipped entirely at zero coefficient exactly like
    // theta_axpy.
    ++singular_skips_;
    singular_counter_->add(1);
    if (cost != 0.0) slot_add(slot(a).theta, theta_nnz_, cost * diag_a);
    return false;
  }

  // w·z in ascending index order — the slot_gather_dot contract.
  double wz = 0.0;
  for (std::size_t k = 0; k < wn; ++k) {
    const std::int32_t s = slot_of_[static_cast<std::size_t>(w[k].col)];
    const double z = s != 0 ? slots_[static_cast<std::size_t>(s - 1)].z : 0.0;
    wz += w[k].val * z;
  }
  const double coef = cost - wz / denom;
  if (coef != 0.0) slot_add(slot(a).theta, theta_nnz_, coef * diag_a);

  const bool touches_row_b = b == a;  // u.get(b) != 0, |diag_a| >= tol
  B_.unit_rank1_diagonal(a, diag_a, std::span<const SparseMatrix::Entry>(w, wn),
                         -1.0 / denom);
  rank1_counter_->add(1);
  fill_gauge_->set(static_cast<double>(B_.offdiag_nnz()));
  return touches_row_b;
}

void LspiLearner::update(std::int64_t a, double cost, std::int64_t b) {
  const std::int64_t actions[1] = {a};
  update_batch(std::span<const std::int64_t>(actions, 1), cost, b);
}

void LspiLearner::q_values(std::span<const std::int64_t> actions,
                           std::span<double> out) const {
  MEGH_ASSERT(actions.size() == out.size(),
              "q_values: output span size mismatch");
  for (const std::int64_t a : actions) {
    MEGH_ASSERT(a >= 0 && a < dim_, "q_values: action index out of range");
  }
  simd::ops().slot_gather(actions.data(), actions.size(), slot_of_.data(),
                          reinterpret_cast<const double*>(slots_.data()),
                          out.data());
}

void LspiLearner::update_batch(std::span<const std::int64_t> actions,
                               double cost, std::int64_t b) {
  if (actions.empty()) return;
  MEGH_ASSERT(b >= 0 && b < dim_,
              "LSPI update: next-action index out of range");
  MEGH_TRACE_SCOPE("lspi.update");
  // Stage A: kick off every batch action's slot-map loads (plus b's) up
  // front — the maps are the only d-sized arrays, their entries are
  // independent random misses, and the batch is small (budget-bounded),
  // so all of them can be in flight together.
  MEGH_PREFETCH(slot_of_.data() + b);
  B_.prefetch_unit_update(b, b);
  for (std::size_t k = 0; k < actions.size(); ++k) {
    MEGH_ASSERT(actions[k] >= 0 && actions[k] < dim_,
                "LSPI update: action index out of range");
    MEGH_PREFETCH(slot_of_.data() + actions[k]);
    B_.prefetch_unit_update(actions[k], actions[k]);
  }
  // Stage B: by the time the prefetch loop above has issued everything,
  // the first map entries have arrived; resolve each one and start the
  // dependent payload loads (B row header, z/θ slot pair) behind it. The
  // first resolve stalls on its map load, but every payload line is then
  // in flight together — two overlapped latency rounds for the whole
  // batch instead of a serial map→payload chain per action. (These are
  // hints: if an update later grows the payload arrays, the stale lines
  // are simply unused.)
  B_.prefetch_row_payload(b);
  prefetch_slot_payload(b);
  for (std::size_t k = 0; k < actions.size(); ++k) {
    B_.prefetch_row_payload(actions[k]);
    prefetch_slot_payload(actions[k]);
  }
  bool row_b_valid = false;
  for (std::size_t k = 0; k < actions.size(); ++k) {
    if (!row_b_valid) {
      B_.row_into(b, row_b_scratch_);
      row_b_valid = true;
    }
    if (update_fused(actions[k], cost, b, row_b_scratch_)) {
      row_b_valid = false;
    }
  }
}

void LspiLearner::restore(SparseMatrix b, SparseVector z,
                          SparseVector theta) {
  MEGH_REQUIRE(b.dim() == dim_ && z.dim() == dim_ && theta.dim() == dim_,
               "LspiLearner::restore: shape mismatch");
  B_ = std::move(b);
  // Fresh lazily-zeroed map instead of a dense O(d) fill; slots rebuild
  // from the checkpointed support only.
  slot_of_ = ZeroLazyBuffer<std::int32_t>(static_cast<std::size_t>(dim_));
  slots_.clear();
  index_of_slot_.clear();
  z_nnz_ = 0;
  theta_nnz_ = 0;
  for (const auto& [i, value] : z.entries()) {
    slot(i).z = value;
    if (value != 0.0) ++z_nnz_;
  }
  for (const auto& [i, value] : theta.entries()) {
    slot(i).theta = value;
    if (value != 0.0) ++theta_nnz_;
  }
  // Counters deliberately survive: restore() is also the burst-rollback and
  // checkpoint-resume path, and zeroing them there silently reset
  // MeghPolicy::stats() and the lspi.* telemetry mid-run. Lifetime
  // diagnostics reset only with the learner itself (constructor).
}

}  // namespace megh
