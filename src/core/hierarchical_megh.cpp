#include "core/hierarchical_megh.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "sim/sharding.hpp"
#include "telemetry/telemetry.hpp"

namespace megh {

namespace {

/// Decorrelate the per-pod RNG streams while keeping pod 0's stream equal
/// to flat Megh's (seed unchanged) — the single-pod bit-identity contract.
std::uint64_t pod_seed(std::uint64_t seed, int pod) {
  return seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(pod));
}

bool plans_match(const ShardPlan& a, const ShardPlan& b) {
  if (a.num_shards() != b.num_shards()) return false;
  for (int s = 0; s < a.num_shards(); ++s) {
    if (a.shard_begin(s) != b.shard_begin(s) ||
        a.shard_end(s) != b.shard_end(s)) {
      return false;
    }
  }
  return true;
}

}  // namespace

HierarchicalMeghPolicy::HierarchicalMeghPolicy(
    const HierarchicalMeghConfig& config)
    : config_(config),
      selector_(config.base.temp0, config.base.epsilon) {
  MEGH_REQUIRE(config.base.max_migration_fraction > 0.0 &&
                   config.base.max_migration_fraction <= 1.0,
               "HierMegh: max_migration_fraction must lie in (0, 1]");
  MEGH_REQUIRE(config.pod_slot_headroom_min >= 0,
               "HierMegh: pod_slot_headroom_min must be >= 0");
  MEGH_REQUIRE(config.pod_slot_headroom_fraction >= 0.0,
               "HierMegh: pod_slot_headroom_fraction must be >= 0");
  if (config.base.recovery.enabled) {
    MEGH_REQUIRE(config.base.recovery.max_retries >= 0 &&
                     config.base.recovery.max_retries <= 16,
                 "HierMegh: max_retries must lie in [0, 16]");
    MEGH_REQUIRE(config.base.recovery.retry_backoff_steps >= 1,
                 "HierMegh: retry_backoff_steps must be >= 1");
    MEGH_REQUIRE(config.base.recovery.retry_min_utilization >= 0.0,
                 "HierMegh: retry_min_utilization must be >= 0");
    MEGH_REQUIRE(config.base.recovery.checkpoint_interval_steps >= 1,
                 "HierMegh: checkpoint_interval_steps must be >= 1");
  }
}

void HierarchicalMeghPolicy::begin(const Datacenter& dc,
                                   const CostConfig& cost,
                                   double interval_s) {
  (void)interval_s;
  basis_ = std::make_unique<ActionBasis>(dc.num_vms(), dc.num_hosts());
  plan_ = make_step_shards(config_.network.get(), dc.num_hosts());
  beta_ = cost.beta_overload;
  migration_budget_ = std::max(
      1, static_cast<int>(std::ceil(config_.base.max_migration_fraction *
                                    dc.num_vms())));
  pod_of_vm_.assign(static_cast<std::size_t>(dc.num_vms()), -1);
  slot_of_vm_.assign(static_cast<std::size_t>(dc.num_vms()), -1);

  pods_.clear();
  pods_.resize(static_cast<std::size_t>(plan_.num_shards()));
  for (int p = 0; p < plan_.num_shards(); ++p) {
    Pod& pod = pods_[static_cast<std::size_t>(p)];
    pod.host_begin = plan_.shard_begin(p);
    pod.host_end = plan_.shard_end(p);
    const int width = pod.host_end - pod.host_begin;
    // Initial membership: every VM currently hosted in the range, ascending
    // (vms_on lists are per-host; a global ascending sort fixes the order).
    pod.members.clear();
    for (int h = pod.host_begin; h < pod.host_end; ++h) {
      for (int vm : dc.vms_on(h)) pod.members.push_back(vm);
    }
    std::sort(pod.members.begin(), pod.members.end());
    const int population = static_cast<int>(pod.members.size());
    const int headroom = std::max(
        config_.pod_slot_headroom_min,
        static_cast<int>(std::ceil(config_.pod_slot_headroom_fraction *
                                   population)));
    pod.cap = population + std::max(1, headroom);
    pod.next_slot = 0;
    pod.vm_of_slot.assign(static_cast<std::size_t>(pod.cap), -1);
    pod.free_slots.clear();
    // Ascending initial assignment: on a single-pod plan slot k is VM k,
    // making the pod action index equal the flat basis index.
    for (int vm : pod.members) {
      const int slot = pod.next_slot++;
      pod.vm_of_slot[static_cast<std::size_t>(slot)] = vm;
      pod_of_vm_[static_cast<std::size_t>(vm)] = p;
      slot_of_vm_[static_cast<std::size_t>(vm)] = slot;
    }
    const std::int64_t dim =
        static_cast<std::int64_t>(pod.cap) * static_cast<std::int64_t>(width);
    pod.learner = std::make_unique<LspiLearner>(
        dim, config_.base.gamma, config_.base.delta,
        config_.base.max_update_support);
    pod.rng = Rng(pod_seed(config_.base.seed, p));
    pod.pending.clear();
    pod.pending.reserve(static_cast<std::size_t>(migration_budget_) + 2);
    pod.staged_rollback = false;
    pod.candidates_of_slot.assign(static_cast<std::size_t>(pod.cap), {});
    for (std::vector<std::size_t>& list : pod.candidates_of_slot) {
      list.reserve(static_cast<std::size_t>(
          config_.base.candidates.targets_per_source + 3));
    }
    pod.slot_used.assign(static_cast<std::size_t>(pod.cap), 0);
    pod.touched_slots.clear();
    pod.touched_slots.reserve(static_cast<std::size_t>(pod.cap));
    pod.retries.clear();
    pod.retries.reserve(
        static_cast<std::size_t>(migration_budget_) *
            static_cast<std::size_t>(
                std::max(1, config_.base.recovery.max_retries)) +
        4);
    pod.checkpoint = CriticSnapshot{};
    pod.faults_last_step = 0;
    pod.rollbacks = 0;
    pod.masked_candidates = 0;
    pod.slot_overflows = 0;
  }

  has_pending_cost_ = false;
  total_migrations_selected_ = 0;
  cost_baseline_ = 0.0;
  baseline_initialized_ = false;
  emitted_.clear();
  emitted_.reserve(static_cast<std::size_t>(migration_budget_) + 2);
  last_step_ = -1;
  faults_seen_ = 0;
  retries_issued_ = 0;
  intern_stat_keys();
}

void HierarchicalMeghPolicy::rebuild_membership(Pod& pod, int pod_id,
                                                const Datacenter& dc) {
  std::vector<int>& members = pod.members;
  members.clear();
  for (int h = pod.host_begin; h < pod.host_end; ++h) {
    for (int vm : dc.vms_on(h)) members.push_back(vm);
  }
  std::sort(members.begin(), members.end());
  // Free the slots of departed VMs. Only pod-local state is touched: the
  // VM's new pod owns (and rewrites) its global pod/slot entries, so two
  // pod phases never write the same word.
  for (int slot = 0; slot < pod.next_slot; ++slot) {
    const int vm = pod.vm_of_slot[static_cast<std::size_t>(slot)];
    if (vm < 0) continue;
    const int host = dc.host_of(vm);
    if (host < pod.host_begin || host >= pod.host_end) {
      pod.vm_of_slot[static_cast<std::size_t>(slot)] = -1;
      pod.free_slots.push_back(slot);
    }
  }
  // Descending order so pop_back() hands out the smallest slot first —
  // deterministic reuse independent of departure order.
  std::sort(pod.free_slots.begin(), pod.free_slots.end(),
            std::greater<int>());
  // Assign slots to immigrants; members without a slot (cap exhausted) are
  // dropped from the candidate domain until churn frees one.
  std::size_t w = 0;
  for (int vm : members) {
    const std::int32_t cur_slot = slot_of_vm_[static_cast<std::size_t>(vm)];
    const bool resident =
        pod_of_vm_[static_cast<std::size_t>(vm)] == pod_id &&
        cur_slot >= 0 &&
        pod.vm_of_slot[static_cast<std::size_t>(cur_slot)] == vm;
    if (resident) {
      members[w++] = vm;
      continue;
    }
    int slot = -1;
    if (!pod.free_slots.empty()) {
      slot = pod.free_slots.back();
      pod.free_slots.pop_back();
    } else if (pod.next_slot < pod.cap) {
      slot = pod.next_slot++;
    }
    if (slot < 0) {
      ++pod.slot_overflows;
      continue;
    }
    pod.vm_of_slot[static_cast<std::size_t>(slot)] = vm;
    pod_of_vm_[static_cast<std::size_t>(vm)] = pod_id;
    slot_of_vm_[static_cast<std::size_t>(vm)] = slot;
    members[w++] = vm;
  }
  members.resize(w);
}

void HierarchicalMeghPolicy::run_pod_phase(int pod_id,
                                           const StepObservation& obs,
                                           bool do_update, double share) {
  MEGH_TRACE_SCOPE("hier_megh.pod_phase");
  Pod& pod = pods_[static_cast<std::size_t>(pod_id)];
  const Datacenter& dc = *obs.dc;
  const bool recovery = config_.base.recovery.enabled;
  rebuild_membership(pod, pod_id, dc);

  std::vector<CandidateAction>& cands = pod.cands.candidates;
  if (pod.members.empty()) {
    // A fully evacuated pod has nothing to decide; its pending transitions
    // (if any) have no candidate set to close against, so they are dropped.
    cands.clear();
    pod.pending.clear();
    pod.staged_rollback = false;
    if (recovery) pod.faults_last_step = 0;
    return;
  }

  CandidateDomain domain;
  domain.host_begin = pod.host_begin;
  domain.host_end = pod.host_end;
  domain.vms = pod.members;
  domain.vm_slot = slot_of_vm_;
  domain.slot_capacity = pod.cap;
  // exec stays null: this already runs inside one of its shard workers.
  generate_candidates(dc, obs.host_util, beta_, *basis_,
                      config_.base.candidates, pod.rng, pod.cands,
                      obs.network, nullptr, &domain);

  if (recovery) {
    if (config_.base.recovery.mask_down_hosts && !obs.host_down.empty()) {
      std::size_t w = 0;
      for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!cands[i].is_noop &&
            obs.host_down[static_cast<std::size_t>(cands[i].host)] != 0) {
          ++pod.masked_candidates;
          continue;
        }
        cands[w++] = cands[i];
      }
      cands.resize(w);
    }
    if (pod.staged_rollback) {
      pod.learner->restore(pod.checkpoint.B, pod.checkpoint.z,
                           pod.checkpoint.theta);
      pod.pending.clear();
      ++pod.rollbacks;
    }
    pod.staged_rollback = false;
    pod.faults_last_step = 0;
  }

  // Pod-local action indices and Q-values.
  std::vector<std::int64_t>& pod_idx = pod.pod_idx;
  std::vector<double>& q = pod.q;
  pod_idx.clear();
  pod_idx.reserve(cands.capacity());
  for (const CandidateAction& c : cands) {
    pod_idx.push_back(pod_index(pod, c.vm, c.host));
  }
  q.reserve(cands.capacity());
  q.resize(cands.size());
  pod.learner->q_values(pod_idx, q);

  // Close the previous step's transitions against this pod's greedy b.
  if (do_update && !pod.pending.empty() && !cands.empty()) {
    const std::int64_t b = pod_idx[BoltzmannSelector::greedy(q)];
    pod.learner->update_batch(pod.pending, share, b);
    pod.learner->q_values(pod_idx, q);
  }
  pod.pending.clear();
  if (recovery && config_.base.learning_enabled &&
      config_.base.recovery.rollback_burst_threshold > 0 &&
      obs.step % config_.base.recovery.checkpoint_interval_steps == 0) {
    pod.checkpoint.B = pod.learner->B();
    pod.checkpoint.z = pod.learner->z();
    pod.checkpoint.theta = pod.learner->theta();
    pod.checkpoint.valid = true;
  }

  // Boltzmann weights (selector reads are const and the decay is serial,
  // so the shared selector is safe here) and the slot → candidates index.
  pod.weights.reserve(cands.capacity());
  selector_.weights(q, pod.weights);
  for (int slot : pod.touched_slots) {
    pod.candidates_of_slot[static_cast<std::size_t>(slot)].clear();
    pod.slot_used[static_cast<std::size_t>(slot)] = 0;
  }
  pod.touched_slots.clear();
  for (std::size_t j = 0; j < cands.size(); ++j) {
    const std::int32_t slot =
        slot_of_vm_[static_cast<std::size_t>(cands[j].vm)];
    std::vector<std::size_t>& list =
        pod.candidates_of_slot[static_cast<std::size_t>(slot)];
    if (list.empty()) pod.touched_slots.push_back(slot);
    list.push_back(j);
  }
}

void HierarchicalMeghPolicy::decide_into(const StepObservation& obs,
                                         std::vector<MigrationAction>& out) {
  MEGH_REQUIRE(basis_ != nullptr, "HierMegh::decide before begin()");
  MEGH_TRACE_SCOPE("hier_megh.decide");
  const Datacenter& dc = *obs.dc;
  const bool recovery = config_.base.recovery.enabled;

  // Serial pre-pass: stage each pod's rollback decision, then compute the
  // global cost share over the transitions that will survive. The baseline
  // EMA advances exactly when flat Megh's would (an update actually runs).
  std::size_t total_pending = 0;
  for (Pod& pod : pods_) {
    pod.staged_rollback =
        recovery && config_.base.recovery.rollback_burst_threshold > 0 &&
        pod.faults_last_step >=
            config_.base.recovery.rollback_burst_threshold &&
        pod.checkpoint.valid;
    if (!pod.staged_rollback) total_pending += pod.pending.size();
  }
  bool do_update = false;
  double share = 0.0;
  if (config_.base.learning_enabled && has_pending_cost_ &&
      total_pending > 0) {
    double effective_cost = pending_cost_;
    if (config_.base.advantage_baseline) {
      if (!baseline_initialized_) {
        cost_baseline_ = pending_cost_;
        baseline_initialized_ = true;
      }
      effective_cost = pending_cost_ - cost_baseline_;
      cost_baseline_ +=
          config_.base.baseline_weight * (pending_cost_ - cost_baseline_);
    }
    share = effective_cost / static_cast<double>(total_pending);
    do_update = true;
  }
  has_pending_cost_ = false;
  if (recovery) {
    last_step_ = obs.step;
    emitted_.clear();
  }

  // Parallel pod phase: one shard per pod, each owning its learner.
  if (obs.exec != nullptr && plans_match(obs.exec->plan(), plan_)) {
    obs.exec->for_shards(
        [&](int s) { run_pod_phase(s, obs, do_update, share); });
  } else {
    for (int p = 0; p < num_pods(); ++p) {
      run_pod_phase(p, obs, do_update, share);
    }
  }

  // Serial coordinator: all Boltzmann draws, in fixed pod-major order,
  // against the single global budget. Each draw consumes the owning pod's
  // RNG (already advanced by its generation phase), so the schedule is
  // deterministic at any job count — and equal to flat Megh's single
  // stream when there is only one pod.
  MEGH_TRACE_SCOPE("hier_megh.coordinate");
  const auto take = [&](Pod& pod, int pod_id, std::size_t j) {
    const CandidateAction& c = pod.cands.candidates[j];
    const std::int32_t slot =
        slot_of_vm_[static_cast<std::size_t>(c.vm)];
    std::uint8_t& used = pod.slot_used[static_cast<std::size_t>(slot)];
    if (used == 0) {
      used = 1;
      pod.pending.push_back(pod.pod_idx[j]);
      if (!c.is_noop) {
        out.push_back(MigrationAction{c.vm, c.host});
        ++total_migrations_selected_;
        if (recovery) {
          emitted_.push_back(EmittedAction{c.vm, dc.host_of(c.vm), c.host,
                                           pod_id, pod.pending.size() - 1,
                                           0});
        }
      }
    }
    for (std::size_t k :
         pod.candidates_of_slot[static_cast<std::size_t>(slot)]) {
      pod.weights[k] = 0.0;
    }
  };
  const auto draw_from = [&](Pod& pod, int pod_id,
                             const std::vector<std::size_t>& subset) {
    double total = 0.0;
    for (std::size_t j : subset) total += pod.weights[j];
    if (!(total > 0.0) || !std::isfinite(total)) return;
    double r = pod.rng.uniform() * total;
    std::size_t last_positive = subset.size();
    for (std::size_t k = 0; k < subset.size(); ++k) {
      const std::size_t j = subset[k];
      if (pod.weights[j] > 0.0) last_positive = k;
      r -= pod.weights[j];
      if (r <= 0.0) {
        take(pod, pod_id, j);
        return;
      }
    }
    if (last_positive < subset.size()) {
      take(pod, pod_id, subset[last_positive]);
    }
  };

  int budget = migration_budget_;

  // Injected retries claim budget first (pods ascending, queue order).
  if (recovery) {
    for (int p = 0; p < num_pods(); ++p) {
      Pod& pod = pods_[static_cast<std::size_t>(p)];
      if (pod.retries.empty()) continue;
      std::size_t keep = 0;
      for (std::size_t i = 0; i < pod.retries.size(); ++i) {
        const PendingRetry r = pod.retries[i];
        if (r.due_step > obs.step) {
          pod.retries[keep++] = r;
          continue;
        }
        const bool target_down =
            !obs.host_down.empty() &&
            obs.host_down[static_cast<std::size_t>(r.target)] != 0;
        const std::int32_t slot =
            slot_of_vm_[static_cast<std::size_t>(r.vm)];
        const bool stale =
            dc.host_of(r.vm) != r.source || slot < 0 ||
            pod_of_vm_[static_cast<std::size_t>(r.vm)] != p ||
            pod.slot_used[static_cast<std::size_t>(slot)] != 0;
        if (target_down || stale) continue;
        if (config_.base.recovery.retry_min_utilization > 0.0 &&
            obs.host_util[static_cast<std::size_t>(r.source)] <
                config_.base.recovery.retry_min_utilization) {
          continue;
        }
        if (budget <= 0) {
          pod.retries[keep++] = r;
          continue;
        }
        const std::vector<std::size_t>& vm_cands =
            pod.candidates_of_slot[static_cast<std::size_t>(slot)];
        if (!vm_cands.empty()) {
          pod.slot_used[static_cast<std::size_t>(slot)] = 1;
          for (std::size_t j : vm_cands) pod.weights[j] = 0.0;
        }
        pod.pending.push_back(pod_index(pod, r.vm, r.target));
        out.push_back(MigrationAction{r.vm, r.target});
        emitted_.push_back(EmittedAction{r.vm, r.source, r.target, p,
                                         pod.pending.size() - 1, r.attempt});
        ++total_migrations_selected_;
        ++retries_issued_;
        --budget;
      }
      pod.retries.resize(keep);
    }
  }

  // Reactive draws: one per overloaded host, pods ascending then hosts
  // ascending — the same global host order flat Megh scans.
  for (int p = 0; p < num_pods() && budget > 0; ++p) {
    Pod& pod = pods_[static_cast<std::size_t>(p)];
    const std::vector<CandidateAction>& cands = pod.cands.candidates;
    if (cands.empty()) continue;
    std::vector<std::size_t>& subset = pod.subset;
    subset.reserve(cands.capacity());
    for (int h = pod.host_begin; h < pod.host_end && budget > 0; ++h) {
      if (obs.host_util[static_cast<std::size_t>(h)] <= beta_) continue;
      subset.clear();
      for (std::size_t j = 0; j < cands.size(); ++j) {
        if (dc.host_of(cands[j].vm) == h) subset.push_back(j);
      }
      if (subset.empty()) continue;
      draw_from(pod, p, subset);
      --budget;
    }
  }

  // One consolidation draw per pod.
  for (int p = 0; p < num_pods() && budget > 0; ++p) {
    Pod& pod = pods_[static_cast<std::size_t>(p)];
    const std::vector<CandidateAction>& cands = pod.cands.candidates;
    std::vector<std::size_t>& subset = pod.subset;
    subset.clear();
    for (std::size_t j = 0; j < cands.size(); ++j) {
      if (cands[j].group == CandidateGroup::kConsolidation) {
        subset.push_back(j);
      }
    }
    if (subset.empty()) continue;
    draw_from(pod, p, subset);
    --budget;
  }

  // One exploration draw per pod over its whole candidate set.
  for (int p = 0; p < num_pods() && budget > 0; ++p) {
    Pod& pod = pods_[static_cast<std::size_t>(p)];
    const std::vector<CandidateAction>& cands = pod.cands.candidates;
    if (cands.empty()) continue;
    std::vector<std::size_t>& subset = pod.subset;
    subset.resize(cands.size());
    for (std::size_t j = 0; j < cands.size(); ++j) subset[j] = j;
    draw_from(pod, p, subset);
    --budget;
  }

  selector_.decay();
}

void HierarchicalMeghPolicy::observe_cost(double step_cost) {
  pending_cost_ = step_cost;
  has_pending_cost_ = true;
}

void HierarchicalMeghPolicy::observe_outcomes(
    std::span<const MigrationOutcome> outcomes) {
  if (!config_.base.recovery.enabled) return;
  MEGH_ASSERT(outcomes.size() == emitted_.size(),
              "outcome feedback must match the emitted action list");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const MigrationOutcome& o = outcomes[i];
    if (o.verdict != MigrationVerdict::kAborted &&
        o.verdict != MigrationVerdict::kTargetDown) {
      continue;
    }
    const EmittedAction& e = emitted_[i];
    Pod& pod = pods_[static_cast<std::size_t>(e.pod)];
    ++faults_seen_;
    ++pod.faults_last_step;
    // The VM stayed on its source (inside pod e.pod), so its slot is still
    // valid: remap the pending transition to the realized no-op.
    pod.pending[e.pending_slot] = pod_index(pod, e.vm, e.source);
    if (o.verdict == MigrationVerdict::kAborted &&
        e.attempt < config_.base.recovery.max_retries) {
      pod.retries.push_back(PendingRetry{
          e.vm, e.source, e.target,
          last_step_ +
              config_.base.recovery.retry_backoff_steps * (1 << e.attempt),
          e.attempt + 1});
    }
  }
}

void HierarchicalMeghPolicy::intern_stat_keys() {
  aggregate_keys_.clear();
  for (const char* name :
       {"qtable_nnz", "theta_nnz", "lspi_updates", "singular_skips",
        "truncations", "b_offdiag_nnz", "temperature", "migrations_selected",
        "faults_seen", "retries", "masked_candidates", "rollbacks", "pods",
        "slot_overflows"}) {
    aggregate_keys_.push_back(StatKey::intern(name));
  }
  pod_keys_.clear();
  const int pods_with_keys =
      std::min(num_pods(), config_.per_pod_stats_limit);
  pod_keys_.reserve(static_cast<std::size_t>(pods_with_keys) * 3);
  for (int p = 0; p < pods_with_keys; ++p) {
    const std::string prefix = "pod" + std::to_string(p) + ".";
    pod_keys_.push_back(StatKey::intern(prefix + "qtable_nnz"));
    pod_keys_.push_back(StatKey::intern(prefix + "lspi_updates"));
    pod_keys_.push_back(StatKey::intern(prefix + "rollbacks"));
  }
}

void HierarchicalMeghPolicy::stats(PolicyStats& out) const {
#ifndef NDEBUG
  // The allocation-free-step guarantee: every key this method writes was
  // interned at begin(); a per-step stats() call must not grow the
  // process-wide registry.
  const int interned_before = StatKey::interned_count();
#endif
  double qtable_nnz = 0.0, theta_nnz = 0.0, lspi_updates = 0.0;
  double singular_skips = 0.0, truncations = 0.0, b_offdiag = 0.0;
  double masked = 0.0, rollbacks = 0.0, overflows = 0.0;
  for (const Pod& pod : pods_) {
    if (pod.learner == nullptr) continue;
    qtable_nnz += static_cast<double>(pod.learner->qtable_nnz());
    theta_nnz += static_cast<double>(pod.learner->theta_nnz());
    lspi_updates += static_cast<double>(pod.learner->updates());
    singular_skips += static_cast<double>(pod.learner->singular_skips());
    truncations += static_cast<double>(pod.learner->truncations());
    b_offdiag += static_cast<double>(pod.learner->B().offdiag_nnz());
    masked += static_cast<double>(pod.masked_candidates);
    rollbacks += static_cast<double>(pod.rollbacks);
    overflows += static_cast<double>(pod.slot_overflows);
  }
  int k = 0;
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], qtable_nnz);
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], theta_nnz);
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], lspi_updates);
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], singular_skips);
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], truncations);
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], b_offdiag);
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)],
          selector_.temperature());
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)],
          static_cast<double>(total_migrations_selected_));
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)],
          static_cast<double>(faults_seen_));
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)],
          static_cast<double>(retries_issued_));
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], masked);
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], rollbacks);
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)],
          static_cast<double>(num_pods()));
  out.set(aggregate_keys_[static_cast<std::size_t>(k++)], overflows);
  const int pods_with_keys = static_cast<int>(pod_keys_.size()) / 3;
  for (int p = 0; p < pods_with_keys; ++p) {
    const Pod& pod = pods_[static_cast<std::size_t>(p)];
    out.set(pod_keys_[static_cast<std::size_t>(p * 3)],
            pod.learner != nullptr
                ? static_cast<double>(pod.learner->qtable_nnz())
                : 0.0);
    out.set(pod_keys_[static_cast<std::size_t>(p * 3 + 1)],
            pod.learner != nullptr
                ? static_cast<double>(pod.learner->updates())
                : 0.0);
    out.set(pod_keys_[static_cast<std::size_t>(p * 3 + 2)],
            static_cast<double>(pod.rollbacks));
  }
#ifndef NDEBUG
  MEGH_ASSERT(StatKey::interned_count() == interned_before,
              "HierMegh stat keys must be interned at begin(), not per step");
#endif
}

const LspiLearner& HierarchicalMeghPolicy::pod_learner(int pod) const {
  MEGH_REQUIRE(pod >= 0 && pod < num_pods(), "pod index out of range");
  const auto& learner = pods_[static_cast<std::size_t>(pod)].learner;
  MEGH_REQUIRE(learner != nullptr, "pod learner not initialized");
  return *learner;
}

LspiLearner& HierarchicalMeghPolicy::mutable_pod_learner(int pod) {
  MEGH_REQUIRE(pod >= 0 && pod < num_pods(), "pod index out of range");
  const auto& learner = pods_[static_cast<std::size_t>(pod)].learner;
  MEGH_REQUIRE(learner != nullptr, "pod learner not initialized");
  return *learner;
}

int HierarchicalMeghPolicy::pod_host_begin(int pod) const {
  MEGH_REQUIRE(pod >= 0 && pod < num_pods(), "pod index out of range");
  return pods_[static_cast<std::size_t>(pod)].host_begin;
}

int HierarchicalMeghPolicy::pod_host_end(int pod) const {
  MEGH_REQUIRE(pod >= 0 && pod < num_pods(), "pod index out of range");
  return pods_[static_cast<std::size_t>(pod)].host_end;
}

int HierarchicalMeghPolicy::pod_slot_capacity(int pod) const {
  MEGH_REQUIRE(pod >= 0 && pod < num_pods(), "pod index out of range");
  return pods_[static_cast<std::size_t>(pod)].cap;
}

std::span<const int> HierarchicalMeghPolicy::pod_vm_of_slot(int pod) const {
  MEGH_REQUIRE(pod >= 0 && pod < num_pods(), "pod index out of range");
  return pods_[static_cast<std::size_t>(pod)].vm_of_slot;
}

}  // namespace megh
