#include "core/megh_policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace megh {

MeghPolicy::MeghPolicy(const MeghConfig& config)
    : config_(config),
      rng_(config.seed),
      selector_(config.temp0, config.epsilon) {
  MEGH_REQUIRE(config.max_migration_fraction > 0.0 &&
                   config.max_migration_fraction <= 1.0,
               "Megh: max_migration_fraction must lie in (0, 1]");
  if (config.recovery.enabled) {
    MEGH_REQUIRE(config.recovery.max_retries >= 0 &&
                     config.recovery.max_retries <= 16,
                 "Megh: max_retries must lie in [0, 16]");
    MEGH_REQUIRE(config.recovery.retry_backoff_steps >= 1,
                 "Megh: retry_backoff_steps must be >= 1");
    MEGH_REQUIRE(config.recovery.retry_min_utilization >= 0.0,
                 "Megh: retry_min_utilization must be >= 0");
    MEGH_REQUIRE(config.recovery.checkpoint_interval_steps >= 1,
                 "Megh: checkpoint_interval_steps must be >= 1");
  }
}

void MeghPolicy::begin(const Datacenter& dc, const CostConfig& cost,
                       double interval_s) {
  (void)interval_s;
  basis_ = std::make_unique<ActionBasis>(dc.num_vms(), dc.num_hosts());
  learner_ = std::make_unique<LspiLearner>(basis_->dim(), config_.gamma,
                                           config_.delta,
                                           config_.max_update_support);
  beta_ = cost.beta_overload;
  migration_budget_ = std::max(
      1, static_cast<int>(std::ceil(config_.max_migration_fraction *
                                    dc.num_vms())));
  pending_actions_.clear();
  // One draw per overloaded host + consolidation + global, each taking at
  // most one action, all bounded by the budget (+1 for the global draw).
  pending_actions_.reserve(static_cast<std::size_t>(migration_budget_) + 2);
  has_pending_cost_ = false;
  total_migrations_selected_ = 0;
  cost_baseline_ = 0.0;
  baseline_initialized_ = false;
  emitted_.clear();
  emitted_.reserve(static_cast<std::size_t>(migration_budget_) + 2);
  retries_.clear();
  retries_.reserve(
      static_cast<std::size_t>(migration_budget_) *
          static_cast<std::size_t>(std::max(1, config_.recovery.max_retries)) +
      4);
  checkpoint_ = CriticSnapshot{};
  last_step_ = -1;
  faults_last_step_ = 0;
  faults_seen_ = 0;
  retries_issued_ = 0;
  masked_candidates_ = 0;
  rollbacks_ = 0;
}

void MeghPolicy::decide_into(const StepObservation& obs,
                             std::vector<MigrationAction>& out) {
  MEGH_REQUIRE(basis_ != nullptr, "MeghPolicy::decide before begin()");
  MEGH_TRACE_SCOPE("megh.decide");
  const Datacenter& dc = *obs.dc;

  // 1. Candidates and their Q-values. The per-host scans inside fan out
  // over the engine's shard executor when one is attached (obs.exec);
  // the result is bit-identical either way.
  generate_candidates(dc, obs.host_util, beta_, *basis_, config_.candidates,
                      rng_, scratch_.candidates, obs.network, obs.exec);
  const bool recovery = config_.recovery.enabled;
  if (recovery) {
    last_step_ = obs.step;
    emitted_.clear();
    // Mask candidates that target a down host: the engine would reject
    // them, and a draw spent on one both wastes migration budget and
    // poisons the SARSA transition with a move that cannot happen. No-ops
    // survive, so "stay put" remains drawable for every source VM.
    if (config_.recovery.mask_down_hosts && !obs.host_down.empty()) {
      std::vector<CandidateAction>& cands = scratch_.candidates.candidates;
      std::size_t w = 0;
      for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!cands[i].is_noop &&
            obs.host_down[static_cast<std::size_t>(cands[i].host)] != 0) {
          ++masked_candidates_;
          continue;
        }
        cands[w++] = cands[i];
      }
      cands.resize(w);
    }
    // Burst rollback: a heavily faulted interval taught the critic from
    // transitions the faults falsified — restore the last checkpoint and
    // drop the straddling pending transitions.
    if (config_.recovery.rollback_burst_threshold > 0 &&
        faults_last_step_ >= config_.recovery.rollback_burst_threshold &&
        checkpoint_.valid) {
      learner_->restore(checkpoint_.B, checkpoint_.z, checkpoint_.theta);
      pending_actions_.clear();
      has_pending_cost_ = false;
      ++rollbacks_;
    }
    faults_last_step_ = 0;
  }
  const std::vector<CandidateAction>& candidates =
      scratch_.candidates.candidates;
  MEGH_ASSERT(!candidates.empty(), "candidate set must never be empty");
  std::vector<double>& q = scratch_.q;
  std::vector<std::int64_t>& q_idx = scratch_.q_idx;
  q.reserve(candidates.capacity());  // worst-case once; no later regrowth
  q_idx.clear();
  q_idx.reserve(candidates.capacity());
  for (const CandidateAction& c : candidates) {
    q_idx.push_back(c.index);
  }
  // One batched gather scores the whole candidate set; the per-candidate
  // slot-map misses overlap instead of serializing.
  q.resize(candidates.size());
  learner_->q_values(q_idx, q);

  // 2. Close the previous step's transitions: φ_b = the greedy action under
  //    the current policy at the state we have just arrived in.
  if (config_.learning_enabled && has_pending_cost_ &&
      !pending_actions_.empty()) {
    const std::int64_t b = candidates[BoltzmannSelector::greedy(q)].index;
    double effective_cost = pending_cost_;
    if (config_.advantage_baseline) {
      if (!baseline_initialized_) {
        cost_baseline_ = pending_cost_;
        baseline_initialized_ = true;
      }
      effective_cost = pending_cost_ - cost_baseline_;
      cost_baseline_ += config_.baseline_weight *
                        (pending_cost_ - cost_baseline_);
    }
    const double share =
        effective_cost / static_cast<double>(pending_actions_.size());
    // All pending actions share the same greedy b, so the batched kernel
    // extracts B.row(b) once instead of once per action.
    learner_->update_batch(pending_actions_, share, b);
    // θ changed; refresh the candidates' Q-values before acting on them.
    learner_->q_values(q_idx, q);
  }
  pending_actions_.clear();
  has_pending_cost_ = false;
  if (recovery && config_.learning_enabled &&
      config_.recovery.rollback_burst_threshold > 0 &&
      obs.step % config_.recovery.checkpoint_interval_steps == 0) {
    refresh_checkpoint();
  }

  // 3. Boltzmann-sample actions, at most one per VM. Algorithm 1 picks a
  //    single action per iteration; the 2% budget (Sec. 6.1) is a ceiling
  //    reached only under pressure. Per Sec. 3.1 the system reacts to each
  //    overloaded PM, so we make one draw *restricted to that host's VMs*
  //    per overloaded host (its no-ops stay drawable — "when to migrate"
  //    remains learned), plus one global draw, all within the budget.
  scratch_.weights.reserve(candidates.capacity());
  selector_.weights(q, scratch_.weights);
  std::vector<double>& weights = scratch_.weights;
  // vm → candidate indices, built once per step so excluding a chosen VM's
  // remaining candidates is O(candidates of that VM), not a rescan of the
  // whole candidate set on every draw. Only the entries dirtied by the
  // previous step (touched_vms) are reset, never the whole fleet.
  std::vector<std::vector<std::size_t>>& candidates_of_vm =
      scratch_.candidates_of_vm;
  if (candidates_of_vm.size() != static_cast<std::size_t>(dc.num_vms())) {
    candidates_of_vm.assign(static_cast<std::size_t>(dc.num_vms()), {});
    // A VM is the source of at most no-op + PABFD + pack +
    // targets_per_source random candidates; reserving that up front means a
    // VM first selected deep into the run still allocates nothing.
    for (std::vector<std::size_t>& list : candidates_of_vm) {
      list.reserve(
          static_cast<std::size_t>(config_.candidates.targets_per_source + 3));
    }
    scratch_.vm_used.assign(static_cast<std::size_t>(dc.num_vms()), 0);
    scratch_.touched_vms.clear();
    scratch_.touched_vms.reserve(static_cast<std::size_t>(dc.num_vms()));
  }
  for (int vm : scratch_.touched_vms) {
    candidates_of_vm[static_cast<std::size_t>(vm)].clear();
    scratch_.vm_used[static_cast<std::size_t>(vm)] = 0;
  }
  scratch_.touched_vms.clear();
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    std::vector<std::size_t>& list =
        candidates_of_vm[static_cast<std::size_t>(candidates[j].vm)];
    if (list.empty()) scratch_.touched_vms.push_back(candidates[j].vm);
    list.push_back(j);
  }
  const auto take = [&](std::size_t i) {
    const CandidateAction& c = candidates[i];
    std::uint8_t& used = scratch_.vm_used[static_cast<std::size_t>(c.vm)];
    if (used == 0) {
      used = 1;
      pending_actions_.push_back(c.index);
      if (!c.is_noop) {
        out.push_back(MigrationAction{c.vm, c.host});
        ++total_migrations_selected_;
        if (recovery) {
          emitted_.push_back(EmittedAction{c.vm, dc.host_of(c.vm), c.host,
                                           pending_actions_.size() - 1, 0});
        }
      }
    }
    // Remove every candidate of this VM from further draws.
    for (std::size_t j : candidates_of_vm[static_cast<std::size_t>(c.vm)]) {
      weights[j] = 0.0;
    }
  };
  const auto draw_from = [&](const std::vector<std::size_t>& subset) {
    double total = 0.0;
    for (std::size_t j : subset) total += weights[j];
    if (!(total > 0.0) || !std::isfinite(total)) return;
    double r = rng_.uniform() * total;
    // Numerical edge: r can stay positive by epsilon after the full pass.
    // Fall back to the last *positive-weight* candidate — never one whose
    // weight was zeroed (already-used VM / non-finite Q), mirroring
    // Rng::weighted_index.
    std::size_t last_positive = subset.size();
    for (std::size_t k = 0; k < subset.size(); ++k) {
      const std::size_t j = subset[k];
      if (weights[j] > 0.0) last_positive = k;
      r -= weights[j];
      if (r <= 0.0) {
        take(j);
        return;
      }
    }
    if (last_positive < subset.size()) take(subset[last_positive]);
  };

  // Injected retries: deterministically re-request due aborted migrations
  // before any Boltzmann draw, claiming budget first. A fault-free run
  // never queues a retry, so this is a no-op there.
  int budget = migration_budget_;
  if (recovery && !retries_.empty()) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < retries_.size(); ++i) {
      const PendingRetry r = retries_[i];
      if (r.due_step > obs.step) {
        retries_[keep++] = r;  // not due yet
        continue;
      }
      const bool target_down =
          !obs.host_down.empty() &&
          obs.host_down[static_cast<std::size_t>(r.target)] != 0;
      // Stale: the VM moved off its source in the meantime (evacuation or
      // another action), or an earlier retry already claimed it this step.
      const bool stale =
          dc.host_of(r.vm) != r.source ||
          scratch_.vm_used[static_cast<std::size_t>(r.vm)] != 0;
      if (target_down || stale) continue;  // drop: the world moved on
      // Drop retries whose source host is no longer hot enough to be worth
      // the extra migration downtime (see retry_min_utilization).
      if (config_.recovery.retry_min_utilization > 0.0 &&
          obs.host_util[static_cast<std::size_t>(r.source)] <
              config_.recovery.retry_min_utilization) {
        continue;
      }
      if (budget <= 0) {
        retries_[keep++] = r;  // over budget; try again next step
        continue;
      }
      // vm_used is only ever reset for VMs in the candidate set
      // (touched_vms), so mark it — and zero the VM's draw weights — only
      // when the VM is a candidate this step; otherwise no draw can reach
      // it anyway.
      const std::vector<std::size_t>& vm_cands =
          candidates_of_vm[static_cast<std::size_t>(r.vm)];
      if (!vm_cands.empty()) {
        scratch_.vm_used[static_cast<std::size_t>(r.vm)] = 1;
        for (std::size_t j : vm_cands) weights[j] = 0.0;
      }
      pending_actions_.push_back(basis_->index(r.vm, r.target));
      out.push_back(MigrationAction{r.vm, r.target});
      emitted_.push_back(EmittedAction{r.vm, r.source, r.target,
                                       pending_actions_.size() - 1,
                                       r.attempt});
      ++total_migrations_selected_;
      ++retries_issued_;
      --budget;
    }
    retries_.resize(keep);
  }

  // Reactive draws: one per overloaded host, over that host's candidates.
  // Overload response has first claim on the whole budget.
  std::vector<std::size_t>& subset = scratch_.subset;
  subset.reserve(candidates.capacity());
  for (int h = 0; h < dc.num_hosts() && budget > 0; ++h) {
    if (obs.host_util[static_cast<std::size_t>(h)] <= beta_) continue;
    subset.clear();
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (dc.host_of(candidates[j].vm) == h) subset.push_back(j);
    }
    if (subset.empty()) continue;
    draw_from(subset);
    --budget;
  }

  // One consolidation draw: restricted to consolidation-source candidates
  // (their no-ops included, so "leave it where it is" stays learnable).
  if (budget > 0) {
    subset.clear();
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (candidates[j].group == CandidateGroup::kConsolidation) {
        subset.push_back(j);
      }
    }
    if (!subset.empty()) {
      draw_from(subset);
      --budget;
    }
  }

  // One global draw (exploration), if any budget remains.
  if (budget > 0) {
    subset.resize(candidates.size());
    for (std::size_t j = 0; j < candidates.size(); ++j) subset[j] = j;
    draw_from(subset);
  }

  // 4. Temperature decay (once per step).
  selector_.decay();
}

void MeghPolicy::observe_cost(double step_cost) {
  pending_cost_ = step_cost;
  has_pending_cost_ = true;
}

void MeghPolicy::observe_outcomes(
    std::span<const MigrationOutcome> outcomes) {
  if (!config_.recovery.enabled) return;
  // One verdict per emitted action, in emission order (engine contract).
  MEGH_ASSERT(outcomes.size() == emitted_.size(),
              "outcome feedback must match the emitted action list");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const MigrationOutcome& o = outcomes[i];
    if (o.verdict != MigrationVerdict::kAborted &&
        o.verdict != MigrationVerdict::kTargetDown) {
      continue;
    }
    const EmittedAction& e = emitted_[i];
    ++faults_seen_;
    ++faults_last_step_;
    // The realized transition kept the VM on its source: remap the pending
    // SARSA action to the no-op so the critic learns from what actually
    // happened (including the fault's cost), not from a move that never
    // landed.
    pending_actions_[e.pending_slot] = basis_->index(e.vm, e.source);
    if (o.verdict == MigrationVerdict::kAborted &&
        e.attempt < config_.recovery.max_retries) {
      retries_.push_back(PendingRetry{
          e.vm, e.source, e.target,
          last_step_ +
              config_.recovery.retry_backoff_steps * (1 << e.attempt),
          e.attempt + 1});
    }
  }
}

void MeghPolicy::refresh_checkpoint() {
  checkpoint_.B = learner_->B();
  checkpoint_.z = learner_->z();
  checkpoint_.theta = learner_->theta();
  checkpoint_.valid = true;
}

void MeghPolicy::stats(PolicyStats& out) const {
  static const StatKey kQtableNnz = StatKey::intern("qtable_nnz");
  static const StatKey kThetaNnz = StatKey::intern("theta_nnz");
  static const StatKey kLspiUpdates = StatKey::intern("lspi_updates");
  static const StatKey kSingularSkips = StatKey::intern("singular_skips");
  static const StatKey kTruncations = StatKey::intern("truncations");
  static const StatKey kBOffdiagNnz = StatKey::intern("b_offdiag_nnz");
  static const StatKey kTemperature = StatKey::intern("temperature");
  static const StatKey kMigrationsSelected =
      StatKey::intern("migrations_selected");
  static const StatKey kFaultsSeen = StatKey::intern("faults_seen");
  static const StatKey kRetries = StatKey::intern("retries");
  static const StatKey kMaskedCandidates =
      StatKey::intern("masked_candidates");
  static const StatKey kRollbacks = StatKey::intern("rollbacks");
  if (learner_ != nullptr) {
    out.set(kQtableNnz, static_cast<double>(learner_->qtable_nnz()));
    out.set(kThetaNnz, static_cast<double>(learner_->theta_nnz()));
    out.set(kLspiUpdates, static_cast<double>(learner_->updates()));
    // A degenerate Sherman–Morrison denominator silently skips the B
    // update; surface it (plus truncation pressure and B fill-in) so
    // snapshots show *why* the critic stalls instead of hiding it.
    out.set(kSingularSkips, static_cast<double>(learner_->singular_skips()));
    out.set(kTruncations, static_cast<double>(learner_->truncations()));
    out.set(kBOffdiagNnz, static_cast<double>(learner_->B().offdiag_nnz()));
  }
  out.set(kTemperature, selector_.temperature());
  out.set(kMigrationsSelected,
          static_cast<double>(total_migrations_selected_));
  // Recovery counters (satellite view of the chaos subsystem): all stay 0
  // when recovery is disabled or the run is fault-free.
  out.set(kFaultsSeen, static_cast<double>(faults_seen_));
  out.set(kRetries, static_cast<double>(retries_issued_));
  out.set(kMaskedCandidates, static_cast<double>(masked_candidates_));
  out.set(kRollbacks, static_cast<double>(rollbacks_));
}

const LspiLearner& MeghPolicy::learner() const {
  MEGH_REQUIRE(learner_ != nullptr, "learner not initialized; call begin()");
  return *learner_;
}

LspiLearner& MeghPolicy::mutable_learner() {
  MEGH_REQUIRE(learner_ != nullptr, "learner not initialized; call begin()");
  return *learner_;
}

}  // namespace megh
