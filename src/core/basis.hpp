// The sparse action basis (Sec. 5, Theorem 1).
//
// Megh projects the combinatorial state-action space onto d = N × M basis
// vectors φ_{jk}, one per action "migrate VM j to PM k" (k equal to j's
// current host encodes the no-op, answering *when* to migrate). Each φ_{jk}
// is the unit vector e_{jk}, so the projection space never needs to be
// materialized — an action is just its flat index.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace megh {

class ActionBasis {
 public:
  ActionBasis(int num_vms, int num_hosts)
      : num_vms_(num_vms), num_hosts_(num_hosts) {
    MEGH_REQUIRE(num_vms > 0 && num_hosts > 0,
                 "action basis requires positive VM and host counts");
  }

  /// Dimension d = N × M of the projected space.
  std::int64_t dim() const {
    return static_cast<std::int64_t>(num_vms_) * num_hosts_;
  }

  /// Flat index of action (vm → host).
  std::int64_t index(int vm, int host) const {
    MEGH_ASSERT(vm >= 0 && vm < num_vms_ && host >= 0 && host < num_hosts_,
                "action out of range");
    return static_cast<std::int64_t>(vm) * num_hosts_ + host;
  }

  int vm_of(std::int64_t action) const {
    MEGH_ASSERT(action >= 0 && action < dim(), "action index out of range");
    return static_cast<int>(action / num_hosts_);
  }

  int host_of(std::int64_t action) const {
    MEGH_ASSERT(action >= 0 && action < dim(), "action index out of range");
    return static_cast<int>(action % num_hosts_);
  }

  int num_vms() const { return num_vms_; }
  int num_hosts() const { return num_hosts_; }

 private:
  int num_vms_;
  int num_hosts_;
};

}  // namespace megh
