// Megh: the paper's online reinforcement-learning migration policy
// (Algorithm 1 + Algorithm 2), assembled from the LSPI critic
// (core/lspi.hpp), the Boltzmann actor (core/boltzmann.hpp) and the
// candidate generator (core/candidates.hpp).
//
// Per step:
//   1. Build the candidate action set and look up each candidate's
//      Q(a) = θ[a].
//   2. Close the previous step's SARSA transitions: every action taken at
//      t−1 is updated with its share of the observed cost C_t and
//      φ_{π(s_t)} = this step's greedy candidate (Eq. 10/11).
//   3. Boltzmann-sample up to ⌈max_migration_fraction · N⌉ actions (one per
//      VM); sampled no-ops answer "don't migrate".
//   4. Decay the temperature (Algorithm 2 line 2).
//
// The learner never needs a training phase: step 2 runs from the very first
// interval ("learn as you go").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/basis.hpp"
#include "core/boltzmann.hpp"
#include "core/candidates.hpp"
#include "core/lspi.hpp"
#include "sim/policy.hpp"

namespace megh {

/// Fault-recovery behaviour (chaos subsystem, src/chaos). All of it is
/// inert unless `enabled` — and even then every mechanism is a no-op in a
/// fault-free run, so a recovery-enabled Megh under a zero-rate FaultPlan
/// makes exactly the decisions a plain Megh makes.
struct MeghRecoveryConfig {
  bool enabled = false;
  /// Drop non-no-op candidates that target a currently-down host before
  /// the Boltzmann draw (the engine would reject them anyway; masking
  /// keeps the learner from wasting draws and SARSA credit on them).
  bool mask_down_hosts = true;
  /// Re-request an aborted migration up to this many times.
  int max_retries = 2;
  /// Steps to wait before the first retry; doubles with each attempt.
  int retry_backoff_steps = 2;
  /// Only issue a due retry while the VM's current host runs at or above
  /// this utilization; retries below it are dropped. Aborted *reactive*
  /// moves (VM stuck on an overloaded source) are the SLA-relevant ones to
  /// push through — re-driving consolidation moves only adds migration
  /// downtime. 0 retries unconditionally.
  double retry_min_utilization = 0.0;
  /// When > 0: a step whose outcome feedback reports at least this many
  /// failed actions (aborts + down targets) rolls the critic back to the
  /// last periodic in-memory snapshot, discarding updates learned from the
  /// fault burst. 0 disables rollback.
  int rollback_burst_threshold = 0;
  /// How often (in steps) the in-memory critic snapshot is refreshed.
  int checkpoint_interval_steps = 64;
};

struct MeghConfig {
  double gamma = 0.5;     // discount factor (Sec. 6.1: 50:50 old vs new)
  double temp0 = 3.0;     // initial Boltzmann temperature (Sec. 6.1)
  double epsilon = 0.01;  // temperature decay rate (Sec. 6.1)
  /// δ in B₀ = (1/δ)·I. The paper sets δ = d, but at d ~ 10⁴-10⁶ that
  /// shrinks every Q-value by 1/d and the Boltzmann weights stay uniform
  /// for the whole run — the critic never influences the actor. δ = 1
  /// keeps the identical algorithm with a usable signal scale (the
  /// ablation bench contrasts both). <= 0 selects the paper's δ = d.
  double delta = 1.0;
  /// Per-step migration budget as a fraction of N (Sec. 6.1: 2%).
  double max_migration_fraction = 0.02;
  /// Subtract an exponential moving average of the step cost before the
  /// critic update (advantage normalization). The paper's Algorithm 1
  /// accumulates raw costs — with always-positive costs every *tried*
  /// action looks worse than an untried one, so exploitation degenerates to
  /// novelty-seeking. A constant baseline only shifts V (Theorem 1/2 are
  /// unaffected asymptotically) but makes the greedy step meaningful.
  /// Disable to run the paper-literal update (ablation bench).
  bool advantage_baseline = true;
  /// EMA weight for the baseline.
  double baseline_weight = 0.05;
  /// Sherman–Morrison factor truncation (see LspiLearner): bounds B's
  /// fill-in so per-step time stays flat over week-long runs.
  int max_update_support = 32;
  /// When false the critic is frozen: decide() still builds candidates,
  /// reads Q-values and Boltzmann-samples, but the LSPI update is skipped.
  /// Used by the frozen-critic ablation and by the allocation-count test
  /// (with the critic frozen, a steady-state step performs zero heap
  /// allocations; with it learning, the only allocations are the Q-table's
  /// own growth — the quantity Fig. 7 plots).
  bool learning_enabled = true;
  CandidateConfig candidates;
  MeghRecoveryConfig recovery;
  std::uint64_t seed = 42;
};

class MeghPolicy : public MigrationPolicy {
 public:
  explicit MeghPolicy(const MeghConfig& config = {});

  std::string name() const override { return "Megh"; }
  void begin(const Datacenter& dc, const CostConfig& cost,
             double interval_s) override;
  /// Hot path: appends into the engine's reused buffer and runs entirely on
  /// per-policy scratch storage — steady-state calls never allocate. The
  /// candidate scans fan out over obs.exec when the engine passes one.
  void decide_into(const StepObservation& obs,
                   std::vector<MigrationAction>& out) override;
  void observe_cost(double step_cost) override;
  /// Recovery feedback (no-op unless config.recovery.enabled): failed
  /// actions (aborted / down target) have their pending SARSA transition
  /// remapped to the realized no-op (the VM stayed on its source), and
  /// aborted migrations are queued for retry with exponential backoff.
  void observe_outcomes(std::span<const MigrationOutcome> outcomes) override;
  void stats(PolicyStats& out) const override;

  /// Expose the critic for tests and the Q-table growth bench (Fig. 7).
  const LspiLearner& learner() const;
  double temperature() const { return selector_.temperature(); }

  // --- checkpointing hooks (see core/checkpoint.hpp) ---
  LspiLearner& mutable_learner();
  void set_temperature(double temp) { selector_.set_temperature(temp); }
  double cost_baseline() const { return cost_baseline_; }
  bool baseline_initialized() const { return baseline_initialized_; }
  void set_cost_baseline(double baseline, bool initialized) {
    cost_baseline_ = baseline;
    baseline_initialized_ = initialized;
  }
  /// The actor's RNG stream, serialized into v3 checkpoints so a restored
  /// policy's Boltzmann draws continue the saved stream bit-exactly.
  const Rng& rng() const { return rng_; }
  Rng& mutable_rng() { return rng_; }
  const MeghConfig& config() const { return config_; }

  // --- serving hooks (src/serve): the open SARSA transition, captured by
  // the daemon's snapshots so a recovery mid-step (between Decide and
  // Observe) resumes with the same pending update a live server holds. ---
  std::span<const std::int64_t> pending_actions() const {
    return pending_actions_;
  }
  double pending_cost() const { return pending_cost_; }
  bool has_pending_cost() const { return has_pending_cost_; }
  long long migrations_selected() const { return total_migrations_selected_; }
  void restore_pending(std::span<const std::int64_t> actions, double cost,
                       bool has_cost, long long migrations_selected) {
    pending_actions_.assign(actions.begin(), actions.end());
    pending_cost_ = cost;
    has_pending_cost_ = has_cost;
    total_migrations_selected_ = migrations_selected;
  }

 private:
  /// Per-step working storage, reused across decide_into() calls. Every
  /// container keeps its capacity between steps, so once the run reaches
  /// steady state a decision touches no heap at all.
  struct DecideScratch {
    CandidateScratch candidates;
    std::vector<double> q;
    /// Candidate action indices, contiguous for the batched q_values
    /// gather (the candidate structs themselves are AoS).
    std::vector<std::int64_t> q_idx;
    std::vector<double> weights;
    /// vm → indices into the candidate set; only entries listed in
    /// `touched_vms` are dirty and cleared lazily at the next step.
    std::vector<std::vector<std::size_t>> candidates_of_vm;
    std::vector<int> touched_vms;
    std::vector<std::uint8_t> vm_used;
    std::vector<std::size_t> subset;
  };

  MeghConfig config_;
  Rng rng_;
  BoltzmannSelector selector_;
  std::unique_ptr<ActionBasis> basis_;
  std::unique_ptr<LspiLearner> learner_;
  double beta_ = 0.7;
  int migration_budget_ = 1;
  DecideScratch scratch_;

  // SARSA bookkeeping: actions sampled at the previous step and the cost
  // observed for the interval they shaped.
  std::vector<std::int64_t> pending_actions_;
  double pending_cost_ = 0.0;
  bool has_pending_cost_ = false;
  long long total_migrations_selected_ = 0;

  // Advantage baseline (EMA of observed step costs).
  double cost_baseline_ = 0.0;
  bool baseline_initialized_ = false;

  // --- chaos recovery (all empty/zero unless config.recovery.enabled) ---
  /// One record per non-no-op action emitted last step, in emission order
  /// (= the engine's outcome order). pending_slot points into
  /// pending_actions_ so a failed action's transition can be remapped.
  struct EmittedAction {
    int vm;
    int source;
    int target;
    std::size_t pending_slot;
    int attempt;  // 0 = fresh Boltzmann draw, >0 = injected retry
  };
  /// An aborted migration waiting to be re-requested.
  struct PendingRetry {
    int vm;
    int source;
    int target;
    int due_step;
    int attempt;
  };
  /// In-memory critic snapshot for burst rollback.
  struct CriticSnapshot {
    SparseMatrix B;
    SparseVector z;
    SparseVector theta;
    bool valid = false;
  };

  void refresh_checkpoint();

  std::vector<EmittedAction> emitted_;
  std::vector<PendingRetry> retries_;
  CriticSnapshot checkpoint_;
  int last_step_ = -1;
  int faults_last_step_ = 0;
  long long faults_seen_ = 0;
  long long retries_issued_ = 0;
  long long masked_candidates_ = 0;
  long long rollbacks_ = 0;
};

}  // namespace megh
