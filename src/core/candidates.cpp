#include "core/candidates.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <span>
#include <numeric>
#include <unordered_set>

#include "sim/placement.hpp"
#include "telemetry/telemetry.hpp"

namespace megh {

namespace {

/// Record the candidate-set size (cumulative count + last-set gauge) on
/// every exit path of generate_candidates.
std::vector<CandidateAction> record_candidates(
    std::vector<CandidateAction> out) {
  static Counter& generated =
      Telemetry::instance().counter("megh.candidates_generated");
  static Gauge& size_gauge =
      Telemetry::instance().gauge("megh.candidate_set_size");
  generated.add(static_cast<long long>(out.size()));
  size_gauge.set(static_cast<double>(out.size()));
  return out;
}

bool target_feasible(const Datacenter& dc, std::span<const double> host_util,
                     int vm, int host, double util_ceiling) {
  if (!dc.fits(vm, host)) return false;
  const double capacity = dc.host_spec(host).mips;
  const double post = host_util[static_cast<std::size_t>(host)] * capacity +
                      dc.vm_demand_mips(vm);
  return post <= util_ceiling * capacity + 1e-9;
}

/// PABFD over the cached utilizations (placement.cpp's generic version
/// recomputes host demand per probe, which dominates Megh's decide() at
/// 800-host scale).
std::optional<int> cached_pabfd(const Datacenter& dc,
                                std::span<const double> host_util, int vm,
                                double util_ceiling) {
  std::optional<int> best;
  double best_increase = std::numeric_limits<double>::infinity();
  bool best_active = false;
  const int current = dc.host_of(vm);
  const double vm_mips = dc.vm_demand_mips(vm);
  for (int h = 0; h < dc.num_hosts(); ++h) {
    if (h == current) continue;
    if (!dc.fits(vm, h)) continue;
    const double capacity = dc.host_spec(h).mips;
    const double before = host_util[static_cast<std::size_t>(h)];
    const double after = before + vm_mips / capacity;
    if (after > util_ceiling + 1e-9) continue;
    const bool active = dc.is_active(h);
    if (best.has_value() && best_active && !active) continue;
    const PowerModel& power = dc.host_spec(h).power;
    const double increase =
        power.watts(std::min(1.0, after)) -
        (active ? power.watts(std::min(1.0, before)) : power.sleep_watts());
    const bool better = !best.has_value() || (active && !best_active) ||
                        (active == best_active && increase < best_increase);
    if (better) {
      best = h;
      best_increase = increase;
      best_active = active;
    }
  }
  return best;
}

void add_candidate(std::vector<CandidateAction>& out, const ActionBasis& basis,
                   int vm, int host, int current, CandidateGroup group) {
  out.push_back(CandidateAction{vm, host, basis.index(vm, host),
                                host == current, group});
}

/// Full enumeration: every (vm, feasible host) pair plus the no-op.
std::vector<CandidateAction> enumerate_all(const Datacenter& dc,
                                           std::span<const double> host_util,
                                           const ActionBasis& basis,
                                           double util_ceiling) {
  std::vector<CandidateAction> out;
  out.reserve(static_cast<std::size_t>(dc.num_vms()) *
              static_cast<std::size_t>(dc.num_hosts()) / 4);
  for (int vm = 0; vm < dc.num_vms(); ++vm) {
    const int current = dc.host_of(vm);
    add_candidate(out, basis, vm, current, current,
                  CandidateGroup::kExploration);
    for (int h = 0; h < dc.num_hosts(); ++h) {
      if (h == current) continue;
      if (target_feasible(dc, host_util, vm, h, util_ceiling)) {
        add_candidate(out, basis, vm, h, current,
                      CandidateGroup::kExploration);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<CandidateAction> generate_candidates(
    const Datacenter& dc, std::span<const double> host_util, double beta,
    const ActionBasis& basis, const CandidateConfig& config, Rng& rng,
    const FatTreeTopology* network) {
  MEGH_TRACE_SCOPE("megh.candidates");
  if (!config.network_aware) network = nullptr;
  MEGH_ASSERT(static_cast<int>(host_util.size()) == dc.num_hosts(),
              "host_util size mismatch");
  if (basis.dim() <= config.full_enumeration_limit) {
    return record_candidates(
        enumerate_all(dc, host_util, basis, config.target_util_ceiling));
  }

  // --- select source VMs (tagged by why they were selected) ---
  enum class Why { kOverloaded, kConsolidation, kRandom };
  std::vector<std::pair<int, Why>> sources;
  std::unordered_set<int> seen;
  const auto push_source = [&](int vm, Why why) {
    if (seen.insert(vm).second) sources.emplace_back(vm, why);
  };

  // 1. VMs on overloaded hosts, most-overloaded hosts first.
  std::vector<int> overloaded;
  for (int h = 0; h < dc.num_hosts(); ++h) {
    if (host_util[static_cast<std::size_t>(h)] > beta) overloaded.push_back(h);
  }
  std::sort(overloaded.begin(), overloaded.end(), [&](int a, int b) {
    return host_util[static_cast<std::size_t>(a)] >
           host_util[static_cast<std::size_t>(b)];
  });
  for (int h : overloaded) {
    for (int vm : dc.vms_on(h)) {
      if (static_cast<int>(sources.size()) >= config.max_overloaded_sources)
        break;
      push_source(vm, Why::kOverloaded);
    }
  }

  // 2. Consolidation: VMs on the least-utilized active hosts.
  std::vector<int> active;
  for (int h = 0; h < dc.num_hosts(); ++h) {
    if (dc.is_active(h)) active.push_back(h);
  }
  std::sort(active.begin(), active.end(), [&](int a, int b) {
    return host_util[static_cast<std::size_t>(a)] <
           host_util[static_cast<std::size_t>(b)];
  });
  int consolidation_added = 0;
  for (int h : active) {
    if (consolidation_added >= config.consolidation_sources) break;
    for (int vm : dc.vms_on(h)) {
      if (consolidation_added >= config.consolidation_sources) break;
      push_source(vm, Why::kConsolidation);
      ++consolidation_added;
    }
  }

  // 3. Random exploration sources.
  for (int i = 0; i < config.random_sources && dc.num_vms() > 0; ++i) {
    push_source(static_cast<int>(rng.index(
                    static_cast<std::size_t>(dc.num_vms()))),
                Why::kRandom);
  }

  // --- targets per source ---
  std::vector<CandidateAction> out;
  out.reserve(sources.size() *
              static_cast<std::size_t>(config.targets_per_source + 2));
  std::unordered_set<std::int64_t> index_seen;
  CandidateGroup group = CandidateGroup::kExploration;
  const auto push_candidate = [&](int vm, int host, int current) {
    if (index_seen.insert(basis.index(vm, host)).second) {
      add_candidate(out, basis, vm, host, current, group);
    }
  };
  for (const auto& [vm, why] : sources) {
    const int current = dc.host_of(vm);
    group = why == Why::kOverloaded  ? CandidateGroup::kOverloaded
            : why == Why::kConsolidation ? CandidateGroup::kConsolidation
                                         : CandidateGroup::kExploration;
    push_candidate(vm, current, current);  // no-op first

    // PABFD target (power-aware best fit) as a high-quality candidate —
    // except for consolidation sources, whose menu is packing-only.
    if (why != Why::kConsolidation) {
      if (const auto pabfd =
              cached_pabfd(dc, host_util, vm, config.target_util_ceiling)) {
        push_candidate(vm, *pabfd, current);
      }
    }

    // Packing target: busiest active host that still fits under the pack
    // ceiling (consolidation move). With a fabric attached, an in-pod
    // packing host is preferred (short copy path); global fallback.
    int pack = -1, pack_local = -1;
    double pack_util = -1.0, pack_local_util = -1.0;
    for (int h = 0; h < dc.num_hosts(); ++h) {
      if (h == current || !dc.is_active(h)) continue;
      const double u = host_util[static_cast<std::size_t>(h)];
      if (u <= pack_local_util && u <= pack_util) continue;
      if (!target_feasible(dc, host_util, vm, h, config.pack_ceiling)) continue;
      if (u > pack_util) {
        pack = h;
        pack_util = u;
      }
      if (network != nullptr && u > pack_local_util &&
          network->pod_of(h) == network->pod_of(current)) {
        pack_local = h;
        pack_local_util = u;
      }
    }
    if (pack_local >= 0) {
      push_candidate(vm, pack_local, current);
    } else if (pack >= 0) {
      push_candidate(vm, pack, current);
    }

    // Random feasible targets (spread moves) — offered for overloaded and
    // exploration sources. Consolidation sources get packing moves only,
    // so the consolidation draw never un-packs a host.
    if (why == Why::kConsolidation) continue;
    int added = 0;
    const int probes = std::min(dc.num_hosts(), 4 * config.targets_per_source);
    for (int i = 0; i < probes && added < config.targets_per_source; ++i) {
      int h;
      if (network != nullptr && rng.bernoulli(config.local_probe_fraction)) {
        // Network-aware probe: a host from the source's own pod (short
        // migration path on the fabric).
        const int pod = network->pod_of(current);
        const int pod_base = pod * network->hosts_per_pod();
        h = pod_base + static_cast<int>(rng.index(static_cast<std::size_t>(
                           network->hosts_per_pod())));
        if (h >= dc.num_hosts()) continue;  // fabric ports beyond the fleet
      } else {
        h = static_cast<int>(
            rng.index(static_cast<std::size_t>(dc.num_hosts())));
      }
      if (h == current) continue;
      if (!target_feasible(dc, host_util, vm, h, config.target_util_ceiling))
        continue;
      push_candidate(vm, h, current);
      ++added;
    }
  }
  return record_candidates(std::move(out));
}

}  // namespace megh
