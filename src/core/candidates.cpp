#include "core/candidates.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "telemetry/telemetry.hpp"

namespace megh {

namespace detail {

namespace {

std::size_t hash_index(std::int64_t key) {
  std::uint64_t h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

}  // namespace

void InsertOnlyIndexSet::reset(std::size_t expected) {
  std::size_t want = 16;
  while (want < expected * 2) want <<= 1;
  if (slots_.size() < want) {
    slots_.assign(want, -1);
  } else {
    std::fill(slots_.begin(), slots_.end(), -1);
  }
  mask_ = slots_.size() - 1;
  size_ = 0;
}

bool InsertOnlyIndexSet::insert(std::int64_t key) {
  MEGH_ASSERT(key >= 0, "InsertOnlyIndexSet keys must be non-negative");
  if ((size_ + 1) * 2 > slots_.size()) rehash(slots_.size() * 2);
  std::size_t i = hash_index(key) & mask_;
  while (slots_[i] != -1) {
    if (slots_[i] == key) return false;
    i = (i + 1) & mask_;
  }
  slots_[i] = key;
  ++size_;
  return true;
}

void InsertOnlyIndexSet::rehash(std::size_t min_slots) {
  std::vector<std::int64_t> old = std::move(slots_);
  slots_.assign(std::max<std::size_t>(min_slots, 16), -1);
  mask_ = slots_.size() - 1;
  for (std::int64_t key : old) {
    if (key == -1) continue;
    std::size_t i = hash_index(key) & mask_;
    while (slots_[i] != -1) i = (i + 1) & mask_;
    slots_[i] = key;
  }
}

}  // namespace detail

namespace {

/// Record the candidate-set size (cumulative count + last-set gauge) on
/// every exit path of generate_candidates.
void record_candidates(std::size_t count) {
  static Counter& generated =
      Telemetry::instance().counter("megh.candidates_generated");
  static Gauge& size_gauge =
      Telemetry::instance().gauge("megh.candidate_set_size");
  generated.add(static_cast<long long>(count));
  size_gauge.set(static_cast<double>(count));
}

bool target_feasible(const Datacenter& dc, std::span<const double> host_util,
                     int vm, int host, double util_ceiling) {
  if (!dc.fits(vm, host)) return false;
  const double capacity = dc.host_spec(host).mips;
  const double post = host_util[static_cast<std::size_t>(host)] * capacity +
                      dc.vm_demand_mips(vm);
  return post <= util_ceiling * capacity + 1e-9;
}

void add_candidate(std::vector<CandidateAction>& out, const ActionBasis& basis,
                   int vm, int host, int current, CandidateGroup group) {
  out.push_back(CandidateAction{vm, host, basis.index(vm, host),
                                host == current, group});
}

/// Full enumeration: every (vm, feasible host) pair plus the no-op.
void enumerate_all(const Datacenter& dc, std::span<const double> host_util,
                   const ActionBasis& basis, double util_ceiling,
                   std::vector<CandidateAction>& out) {
  // d is small on this path by construction, but full_enumeration_limit is
  // caller-configurable: clamp the occupancy guess so a generous limit
  // cannot turn the reserve itself into a huge upfront allocation.
  const std::size_t guess = static_cast<std::size_t>(dc.num_vms()) *
                            static_cast<std::size_t>(dc.num_hosts()) / 4;
  out.reserve(std::min<std::size_t>(guess, 65'536));
  for (int vm = 0; vm < dc.num_vms(); ++vm) {
    const int current = dc.host_of(vm);
    add_candidate(out, basis, vm, current, current,
                  CandidateGroup::kExploration);
    for (int h = 0; h < dc.num_hosts(); ++h) {
      if (h == current) continue;
      if (target_feasible(dc, host_util, vm, h, util_ceiling)) {
        add_candidate(out, basis, vm, h, current,
                      CandidateGroup::kExploration);
      }
    }
  }
}

}  // namespace

void generate_candidates(const Datacenter& dc,
                         std::span<const double> host_util, double beta,
                         const ActionBasis& basis,
                         const CandidateConfig& config, Rng& rng,
                         CandidateScratch& scratch,
                         const FatTreeTopology* network) {
  MEGH_TRACE_SCOPE("megh.candidates");
  if (!config.network_aware) network = nullptr;
  MEGH_ASSERT(static_cast<int>(host_util.size()) == dc.num_hosts(),
              "host_util size mismatch");
  scratch.candidates.clear();
  if (basis.dim() <= config.full_enumeration_limit) {
    enumerate_all(dc, host_util, basis, config.target_util_ceiling,
                  scratch.candidates);
    record_candidates(scratch.candidates.size());
    return;
  }

  const int num_hosts = dc.num_hosts();
  const std::size_t hosts = static_cast<std::size_t>(num_hosts);

  // Worst-case source/candidate counts from the config — used to size every
  // reusable container up front, so no later step can set a new capacity
  // record and trigger a mid-run reallocation.
  const std::size_t max_sources =
      static_cast<std::size_t>(config.max_overloaded_sources) +
      static_cast<std::size_t>(config.consolidation_sources) +
      static_cast<std::size_t>(config.random_sources);
  const std::size_t max_candidates =
      max_sources * static_cast<std::size_t>(config.targets_per_source + 3);

  // --- select source VMs (tagged by the group they will draw in) ---
  if (scratch.vm_epoch.size() != static_cast<std::size_t>(dc.num_vms())) {
    scratch.vm_epoch.assign(static_cast<std::size_t>(dc.num_vms()), 0);
    scratch.epoch = 0;
    scratch.sources.reserve(max_sources);
    scratch.overloaded_hosts.reserve(hosts);
    scratch.active_hosts.reserve(hosts);
  }
  if (++scratch.epoch == 0) {  // wrapped: stale stamps could alias
    std::fill(scratch.vm_epoch.begin(), scratch.vm_epoch.end(), 0u);
    scratch.epoch = 1;
  }
  const std::uint32_t epoch = scratch.epoch;
  auto& sources = scratch.sources;
  sources.clear();
  const auto push_source = [&](int vm, CandidateGroup group) {
    std::uint32_t& stamp = scratch.vm_epoch[static_cast<std::size_t>(vm)];
    if (stamp != epoch) {
      stamp = epoch;
      sources.emplace_back(vm, group);
    }
  };

  // 1. VMs on overloaded hosts, most-overloaded hosts first.
  auto& overloaded = scratch.overloaded_hosts;
  overloaded.clear();
  for (int h = 0; h < num_hosts; ++h) {
    if (host_util[static_cast<std::size_t>(h)] > beta) overloaded.push_back(h);
  }
  std::sort(overloaded.begin(), overloaded.end(), [&](int a, int b) {
    return host_util[static_cast<std::size_t>(a)] >
           host_util[static_cast<std::size_t>(b)];
  });
  for (int h : overloaded) {
    for (int vm : dc.vms_on(h)) {
      if (static_cast<int>(sources.size()) >= config.max_overloaded_sources)
        break;
      push_source(vm, CandidateGroup::kOverloaded);
    }
  }

  // 2. Consolidation: VMs on the least-utilized active hosts.
  auto& active_hosts = scratch.active_hosts;
  active_hosts.clear();
  for (int h = 0; h < num_hosts; ++h) {
    if (dc.is_active(h)) active_hosts.push_back(h);
  }
  std::sort(active_hosts.begin(), active_hosts.end(), [&](int a, int b) {
    return host_util[static_cast<std::size_t>(a)] <
           host_util[static_cast<std::size_t>(b)];
  });
  int consolidation_added = 0;
  for (int h : active_hosts) {
    if (consolidation_added >= config.consolidation_sources) break;
    for (int vm : dc.vms_on(h)) {
      if (consolidation_added >= config.consolidation_sources) break;
      push_source(vm, CandidateGroup::kConsolidation);
      ++consolidation_added;
    }
  }

  // 3. Random exploration sources.
  for (int i = 0; i < config.random_sources && dc.num_vms() > 0; ++i) {
    push_source(static_cast<int>(
                    rng.index(static_cast<std::size_t>(dc.num_vms()))),
                CandidateGroup::kExploration);
  }

  // --- hoist step-constant per-host values ---
  // Every expression below mirrors the Datacenter accessor the scans used
  // to call per (source, host); precomputing them per step changes nothing
  // but the constant factor.
  scratch.host_capacity.resize(hosts);
  scratch.host_ram_used.resize(hosts);
  scratch.host_ram_cap.resize(hosts);
  scratch.host_base_watts.resize(hosts);
  scratch.host_power.resize(hosts);
  scratch.host_active.resize(hosts);
  for (int h = 0; h < num_hosts; ++h) {
    const std::size_t i = static_cast<std::size_t>(h);
    const HostSpec& spec = dc.host_spec(h);
    scratch.host_capacity[i] = spec.mips;
    scratch.host_ram_used[i] = dc.host_ram_used(h);
    scratch.host_ram_cap[i] = spec.ram_mb;
    scratch.host_power[i] = &spec.power;
    const bool active = dc.is_active(h);
    scratch.host_active[i] = active ? 1 : 0;
    // cached_pabfd's per-probe baseline, computed once per host instead:
    // active hosts pay watts(before), sleeping hosts their sleep draw.
    scratch.host_base_watts[i] =
        active ? spec.power.watts(std::min(1.0, host_util[i]))
               : spec.power.sleep_watts();
  }

  // Datacenter::fits on the hoisted arrays (identical comparison).
  const auto fits_fast = [&](std::size_t h, double vm_ram) {
    return scratch.host_ram_used[h] + vm_ram <= scratch.host_ram_cap[h] + 1e-9;
  };
  // target_feasible on the hoisted arrays (identical arithmetic).
  const auto feasible_fast = [&](std::size_t h, double vm_ram, double vm_mips,
                                 double ceiling) {
    if (!fits_fast(h, vm_ram)) return false;
    const double capacity = scratch.host_capacity[h];
    const double post = host_util[h] * capacity + vm_mips;
    return post <= ceiling * capacity + 1e-9;
  };
  // PABFD over the cached utilizations (placement.cpp's generic version
  // recomputes host demand per probe, which dominated Megh's decide() at
  // 800-host scale). Selection logic and arithmetic match the original
  // per-source implementation exactly; only watts(before) is hoisted.
  const auto pabfd_fast = [&](int current, double vm_ram,
                              double vm_mips) -> int {
    int best = -1;
    double best_increase = std::numeric_limits<double>::infinity();
    bool best_active = false;
    for (int h = 0; h < num_hosts; ++h) {
      if (h == current) continue;
      const std::size_t i = static_cast<std::size_t>(h);
      if (!fits_fast(i, vm_ram)) continue;
      const double capacity = scratch.host_capacity[i];
      const double after = host_util[i] + vm_mips / capacity;
      if (after > config.target_util_ceiling + 1e-9) continue;
      const bool active = scratch.host_active[i] != 0;
      if (best >= 0 && best_active && !active) continue;
      const double increase = scratch.host_power[i]->watts(
                                  std::min(1.0, after)) -
                              scratch.host_base_watts[i];
      const bool better = best < 0 || (active && !best_active) ||
                          (active == best_active && increase < best_increase);
      if (better) {
        best = h;
        best_increase = increase;
        best_active = active;
      }
    }
    return best;
  };

  // --- targets per source ---
  auto& out = scratch.candidates;
  if (out.capacity() < max_candidates) out.reserve(max_candidates);
  scratch.index_seen.reset(max_candidates);
  CandidateGroup group = CandidateGroup::kExploration;
  const auto push_candidate = [&](int vm, int host, int current) {
    if (scratch.index_seen.insert(basis.index(vm, host))) {
      add_candidate(out, basis, vm, host, current, group);
    }
  };
  for (const auto& [vm, source_group] : sources) {
    const int current = dc.host_of(vm);
    const double vm_ram = dc.vm_spec(vm).ram_mb;
    const double vm_mips = dc.vm_demand_mips(vm);
    group = source_group;
    push_candidate(vm, current, current);  // no-op first

    // PABFD target (power-aware best fit) as a high-quality candidate —
    // except for consolidation sources, whose menu is packing-only.
    if (group != CandidateGroup::kConsolidation) {
      const int pabfd = pabfd_fast(current, vm_ram, vm_mips);
      if (pabfd >= 0) push_candidate(vm, pabfd, current);
    }

    // Packing target: busiest active host that still fits under the pack
    // ceiling (consolidation move). With a fabric attached, an in-pod
    // packing host is preferred (short copy path); global fallback.
    int pack = -1, pack_local = -1;
    double pack_util = -1.0, pack_local_util = -1.0;
    for (int h = 0; h < num_hosts; ++h) {
      const std::size_t i = static_cast<std::size_t>(h);
      if (h == current || scratch.host_active[i] == 0) continue;
      const double u = host_util[i];
      if (u <= pack_local_util && u <= pack_util) continue;
      if (!feasible_fast(i, vm_ram, vm_mips, config.pack_ceiling)) continue;
      if (u > pack_util) {
        pack = h;
        pack_util = u;
      }
      if (network != nullptr && u > pack_local_util &&
          network->pod_of(h) == network->pod_of(current)) {
        pack_local = h;
        pack_local_util = u;
      }
    }
    if (pack_local >= 0) {
      push_candidate(vm, pack_local, current);
    } else if (pack >= 0) {
      push_candidate(vm, pack, current);
    }

    // Random feasible targets (spread moves) — offered for overloaded and
    // exploration sources. Consolidation sources get packing moves only,
    // so the consolidation draw never un-packs a host.
    if (group == CandidateGroup::kConsolidation) continue;
    int added = 0;
    const int probes = std::min(num_hosts, 4 * config.targets_per_source);
    for (int i = 0; i < probes && added < config.targets_per_source; ++i) {
      int h;
      if (network != nullptr && rng.bernoulli(config.local_probe_fraction)) {
        // Network-aware probe: a host from the source's own pod (short
        // migration path on the fabric).
        const int pod = network->pod_of(current);
        const int pod_base = pod * network->hosts_per_pod();
        h = pod_base + static_cast<int>(rng.index(static_cast<std::size_t>(
                           network->hosts_per_pod())));
        if (h >= num_hosts) continue;  // fabric ports beyond the fleet
      } else {
        h = static_cast<int>(rng.index(static_cast<std::size_t>(num_hosts)));
      }
      if (h == current) continue;
      if (!feasible_fast(static_cast<std::size_t>(h), vm_ram, vm_mips,
                         config.target_util_ceiling))
        continue;
      push_candidate(vm, h, current);
      ++added;
    }
  }
  record_candidates(out.size());
}

std::vector<CandidateAction> generate_candidates(
    const Datacenter& dc, std::span<const double> host_util, double beta,
    const ActionBasis& basis, const CandidateConfig& config, Rng& rng,
    const FatTreeTopology* network) {
  CandidateScratch scratch;
  generate_candidates(dc, host_util, beta, basis, config, rng, scratch,
                      network);
  return std::move(scratch.candidates);
}

}  // namespace megh
