#include "core/candidates.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "telemetry/telemetry.hpp"

namespace megh {

namespace detail {

namespace {

std::size_t hash_index(std::int64_t key) {
  std::uint64_t h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

}  // namespace

void InsertOnlyIndexSet::reset(std::size_t expected) {
  std::size_t want = 16;
  while (want < expected * 2) want <<= 1;
  if (slots_.size() < want) {
    slots_.assign(want, -1);
  } else {
    std::fill(slots_.begin(), slots_.end(), -1);
  }
  mask_ = slots_.size() - 1;
  size_ = 0;
}

bool InsertOnlyIndexSet::insert(std::int64_t key) {
  MEGH_ASSERT(key >= 0, "InsertOnlyIndexSet keys must be non-negative");
  if ((size_ + 1) * 2 > slots_.size()) rehash(slots_.size() * 2);
  std::size_t i = hash_index(key) & mask_;
  while (slots_[i] != -1) {
    if (slots_[i] == key) return false;
    i = (i + 1) & mask_;
  }
  slots_[i] = key;
  ++size_;
  return true;
}

void InsertOnlyIndexSet::rehash(std::size_t min_slots) {
  std::vector<std::int64_t> old = std::move(slots_);
  slots_.assign(std::max<std::size_t>(min_slots, 16), -1);
  mask_ = slots_.size() - 1;
  for (std::int64_t key : old) {
    if (key == -1) continue;
    std::size_t i = hash_index(key) & mask_;
    while (slots_[i] != -1) i = (i + 1) & mask_;
    slots_[i] = key;
  }
}

}  // namespace detail

namespace {

/// Record the candidate-set size (cumulative count + last-set gauge) on
/// every exit path of generate_candidates.
void record_candidates(std::size_t count) {
  static Counter& generated =
      Telemetry::instance().counter("megh.candidates_generated");
  static Gauge& size_gauge =
      Telemetry::instance().gauge("megh.candidate_set_size");
  generated.add(static_cast<long long>(count));
  size_gauge.set(static_cast<double>(count));
}

bool target_feasible(const Datacenter& dc, std::span<const double> host_util,
                     int vm, int host, double util_ceiling) {
  if (!dc.fits(vm, host)) return false;
  const double capacity = dc.host_spec(host).mips;
  const double post = host_util[static_cast<std::size_t>(host)] * capacity +
                      dc.vm_demand_mips(vm);
  return post <= util_ceiling * capacity + 1e-9;
}

void add_candidate(std::vector<CandidateAction>& out, const ActionBasis& basis,
                   int vm, int host, int current, CandidateGroup group) {
  out.push_back(CandidateAction{vm, host, basis.index(vm, host),
                                host == current, group});
}

/// Full enumeration: every (vm, feasible host) pair plus the no-op.
///
/// Emission order is pod-major when a fabric is attached: pods in
/// ascending order, and within a pod its VMs in ascending order (a VM
/// belongs to the pod of its current host), each VM emitting its no-op
/// first and then targets by ascending host. Per-pod outputs are therefore
/// contiguous blocks, so a sharded enumeration merges by plain
/// concatenation in pod order — no interleaving to reconstruct. Without a
/// fabric there is a single block and the order is exactly the historical
/// vm-ascending one (the scalar-golden order).
void enumerate_all(const Datacenter& dc, std::span<const double> host_util,
                   const ActionBasis& basis, double util_ceiling,
                   const FatTreeTopology* network,
                   const CandidateDomain* domain,
                   std::vector<CandidateAction>& out) {
  // d is small on this path by construction, but full_enumeration_limit is
  // caller-configurable: clamp the occupancy guess so a generous limit
  // cannot turn the reserve itself into a huge upfront allocation.
  const std::size_t guess = static_cast<std::size_t>(dc.num_vms()) *
                            static_cast<std::size_t>(dc.num_hosts()) / 4;
  out.reserve(std::min<std::size_t>(guess, 65'536));
  const int host_lo = domain != nullptr ? domain->host_begin : 0;
  const int host_hi = domain != nullptr ? domain->host_end : dc.num_hosts();
  const auto emit_vm = [&](int vm) {
    const int current = dc.host_of(vm);
    add_candidate(out, basis, vm, current, current,
                  CandidateGroup::kExploration);
    for (int h = host_lo; h < host_hi; ++h) {
      if (h == current) continue;
      if (target_feasible(dc, host_util, vm, h, util_ceiling)) {
        add_candidate(out, basis, vm, h, current,
                      CandidateGroup::kExploration);
      }
    }
  };
  if (domain != nullptr) {
    // Domain VMs come pre-sorted ascending — the same order the single-pod
    // (and fabric-free) fleet enumeration below walks them in.
    for (int vm : domain->vms) emit_vm(vm);
    return;
  }
  if (network == nullptr || network->capacity() < dc.num_hosts()) {
    for (int vm = 0; vm < dc.num_vms(); ++vm) emit_vm(vm);
    return;
  }
  for (int pod = 0; pod < network->num_pods(); ++pod) {
    for (int vm = 0; vm < dc.num_vms(); ++vm) {
      if (network->pod_of(dc.host_of(vm)) == pod) emit_vm(vm);
    }
  }
#ifndef NDEBUG
  // The concatenation contract above: source pods never decrease.
  for (std::size_t i = 1; i < out.size(); ++i) {
    MEGH_ASSERT(network->pod_of(dc.host_of(out[i].vm)) >=
                    network->pod_of(dc.host_of(out[i - 1].vm)),
                "enumerate_all: pod blocks must be contiguous");
  }
#endif
}

}  // namespace

void generate_candidates(const Datacenter& dc,
                         std::span<const double> host_util, double beta,
                         const ActionBasis& basis,
                         const CandidateConfig& config, Rng& rng,
                         CandidateScratch& scratch,
                         const FatTreeTopology* network,
                         const ShardExecutor* exec,
                         const CandidateDomain* domain) {
  MEGH_TRACE_SCOPE("megh.candidates");
  if (!config.network_aware) network = nullptr;
  MEGH_ASSERT(static_cast<int>(host_util.size()) == dc.num_hosts(),
              "host_util size mismatch");
  scratch.candidates.clear();
  // The enumeration gate compares the reachable action count: the full
  // basis for fleet calls, |vms| × width for a domain (the same product —
  // N × M — when the domain spans the fleet).
  const std::int64_t reachable_dim =
      domain != nullptr
          ? static_cast<std::int64_t>(domain->vms.size()) *
                static_cast<std::int64_t>(domain->host_end -
                                          domain->host_begin)
          : basis.dim();
  if (reachable_dim <= config.full_enumeration_limit) {
    enumerate_all(dc, host_util, basis, config.target_util_ceiling, network,
                  domain, scratch.candidates);
    record_candidates(scratch.candidates.size());
    return;
  }

  const int num_hosts = dc.num_hosts();
  // Host range this call may source from, scan and target. Every per-host
  // scratch array below is sized `hosts` = the range's width and indexed
  // relative to host_lo, so a pod-sized domain costs pod-sized scratch.
  const int host_lo = domain != nullptr ? domain->host_begin : 0;
  const int host_hi = domain != nullptr ? domain->host_end : num_hosts;
  MEGH_ASSERT(host_lo >= 0 && host_lo < host_hi && host_hi <= num_hosts,
              "generate_candidates: domain host range out of bounds");
  const std::size_t hosts = static_cast<std::size_t>(host_hi - host_lo);

  // Worst-case source/candidate counts from the config — used to size every
  // reusable container up front, so no later step can set a new capacity
  // record and trigger a mid-run reallocation.
  const std::size_t max_sources =
      static_cast<std::size_t>(config.max_overloaded_sources) +
      static_cast<std::size_t>(config.consolidation_sources) +
      static_cast<std::size_t>(config.random_sources);
  const std::size_t max_candidates =
      max_sources * static_cast<std::size_t>(config.targets_per_source + 3);

  // --- select source VMs (tagged by the group they will draw in) ---
  // The "seen" stamp array is indexed by the VM's dense slot: the global vm
  // id for fleet calls, the domain's vm_slot mapping for pod calls — so a
  // pod-sized domain keeps the array pod-sized.
  const std::size_t stamp_slots =
      domain != nullptr ? static_cast<std::size_t>(domain->slot_capacity)
                        : static_cast<std::size_t>(dc.num_vms());
  if (scratch.vm_epoch.size() != stamp_slots) {
    scratch.vm_epoch.assign(stamp_slots, 0);
    scratch.epoch = 0;
    scratch.sources.reserve(max_sources);
    scratch.overloaded_hosts.reserve(hosts);
    scratch.active_hosts.reserve(hosts);
  }
  if (++scratch.epoch == 0) {  // wrapped: stale stamps could alias
    std::fill(scratch.vm_epoch.begin(), scratch.vm_epoch.end(), 0u);
    scratch.epoch = 1;
  }
  const std::uint32_t epoch = scratch.epoch;
  auto& sources = scratch.sources;
  sources.clear();
  const auto stamp_of = [&](int vm) -> std::uint32_t& {
    const std::size_t slot =
        domain != nullptr
            ? static_cast<std::size_t>(
                  domain->vm_slot[static_cast<std::size_t>(vm)])
            : static_cast<std::size_t>(vm);
    MEGH_ASSERT(slot < scratch.vm_epoch.size(),
                "generate_candidates: vm slot out of range");
    return scratch.vm_epoch[slot];
  };
  const auto push_source = [&](int vm, CandidateGroup group) {
    std::uint32_t& stamp = stamp_of(vm);
    if (stamp != epoch) {
      stamp = epoch;
      sources.emplace_back(vm, group);
    }
  };

  // 1. VMs on overloaded hosts, most-overloaded hosts first.
  auto& overloaded = scratch.overloaded_hosts;
  overloaded.clear();
  for (int h = host_lo; h < host_hi; ++h) {
    if (host_util[static_cast<std::size_t>(h)] > beta) overloaded.push_back(h);
  }
  std::sort(overloaded.begin(), overloaded.end(), [&](int a, int b) {
    return host_util[static_cast<std::size_t>(a)] >
           host_util[static_cast<std::size_t>(b)];
  });
  for (int h : overloaded) {
    for (int vm : dc.vms_on(h)) {
      if (static_cast<int>(sources.size()) >= config.max_overloaded_sources)
        break;
      push_source(vm, CandidateGroup::kOverloaded);
    }
  }

  // 2. Consolidation: VMs on the least-utilized active hosts.
  auto& active_hosts = scratch.active_hosts;
  active_hosts.clear();
  for (int h = host_lo; h < host_hi; ++h) {
    if (dc.is_active(h)) active_hosts.push_back(h);
  }
  std::sort(active_hosts.begin(), active_hosts.end(), [&](int a, int b) {
    return host_util[static_cast<std::size_t>(a)] <
           host_util[static_cast<std::size_t>(b)];
  });
  int consolidation_added = 0;
  for (int h : active_hosts) {
    if (consolidation_added >= config.consolidation_sources) break;
    for (int vm : dc.vms_on(h)) {
      if (consolidation_added >= config.consolidation_sources) break;
      push_source(vm, CandidateGroup::kConsolidation);
      ++consolidation_added;
    }
  }

  // 3. Random exploration sources. Domain calls draw from the domain's VM
  // list; a fleet-spanning domain has vms[i] == i, so the Rng consumption
  // and the chosen VM match the domain-free draw exactly.
  const std::size_t vm_universe = domain != nullptr
                                      ? domain->vms.size()
                                      : static_cast<std::size_t>(dc.num_vms());
  for (int i = 0; i < config.random_sources && vm_universe > 0; ++i) {
    const std::size_t pick = rng.index(vm_universe);
    push_source(domain != nullptr ? domain->vms[pick]
                                  : static_cast<int>(pick),
                CandidateGroup::kExploration);
  }

  // --- resolve the shard plan (single code path, sharded or not) ---
  // The batched scans below always run per shard and merge in shard order;
  // with no executor the whole fleet is one shard, which makes the merged
  // result trivially the serial fold. One implementation, no drift.
  // Domain calls never fan out: they already execute inside one of the
  // executor's shard workers (the pool is not re-entrant), and their single
  // shard is the domain itself. Shard bounds are relative to host_lo.
  if (domain != nullptr) exec = nullptr;
  const int domain_width = host_hi - host_lo;
  const ShardPlan* plan = nullptr;
  if (exec != nullptr) {
    MEGH_ASSERT(exec->plan().count() == num_hosts,
                "generate_candidates: executor plan does not cover the fleet");
    plan = &exec->plan();
  } else {
    if (!scratch.fallback_plan.has_value() ||
        scratch.fallback_plan->count() != domain_width) {
      scratch.fallback_plan = ShardPlan::single(domain_width);
    }
    plan = &*scratch.fallback_plan;
  }
  const int num_shards = plan->num_shards();
  const bool fan_out = exec != nullptr && exec->parallel();

  // --- hoist step-constant per-host values ---
  // Every expression below mirrors the Datacenter accessor the scans used
  // to call per (source, host); precomputing them per step changes nothing
  // but the constant factor. Each host writes only its own entries, so the
  // loop shards freely.
  scratch.host_capacity.resize(hosts);
  scratch.host_ram_used.resize(hosts);
  scratch.host_ram_cap.resize(hosts);
  scratch.host_base_watts.resize(hosts);
  scratch.host_power.resize(hosts);
  scratch.host_active.resize(hosts);
  // Hoisted arrays are indexed relative to host_lo (rel == global for
  // fleet calls); host_util stays globally indexed throughout.
  const auto hoist_host = [&](int h) {
    const std::size_t i = static_cast<std::size_t>(h - host_lo);
    const HostSpec& spec = dc.host_spec(h);
    scratch.host_capacity[i] = spec.mips;
    scratch.host_ram_used[i] = dc.host_ram_used(h);
    scratch.host_ram_cap[i] = spec.ram_mb;
    scratch.host_power[i] = &spec.power;
    const bool active = dc.is_active(h);
    scratch.host_active[i] = active ? 1 : 0;
    // cached_pabfd's per-probe baseline, computed once per host instead:
    // active hosts pay watts(before), sleeping hosts their sleep draw.
    scratch.host_base_watts[i] =
        active ? spec.power.watts(
                     std::min(1.0, host_util[static_cast<std::size_t>(h)]))
               : spec.power.sleep_watts();
  };
  if (fan_out) {
    exec->for_items(hoist_host);
  } else {
    for (int h = host_lo; h < host_hi; ++h) hoist_host(h);
  }

  // Datacenter::fits on the hoisted arrays (identical comparison).
  const auto fits_fast = [&](int h, double vm_ram) {
    const std::size_t i = static_cast<std::size_t>(h - host_lo);
    return scratch.host_ram_used[i] + vm_ram <= scratch.host_ram_cap[i] + 1e-9;
  };
  // target_feasible on the hoisted arrays (identical arithmetic).
  const auto feasible_fast = [&](int h, double vm_ram, double vm_mips,
                                 double ceiling) {
    if (!fits_fast(h, vm_ram)) return false;
    const std::size_t i = static_cast<std::size_t>(h - host_lo);
    const double capacity = scratch.host_capacity[i];
    const double post =
        host_util[static_cast<std::size_t>(h)] * capacity + vm_mips;
    return post <= ceiling * capacity + 1e-9;
  };
  // --- batched per-(shard, source) PABFD + packing scans ---
  // The per-host scans are the step's O(sources × hosts) core. Both are
  // RNG-free strict-preference folds (PABFD: prefer active, then smaller
  // power increase, first host wins ties; packing: strictly busiest
  // feasible host, first wins), so each shard can fold its contiguous host
  // range independently and a serial merge in shard order reproduces the
  // full-range fold bit-for-bit. PABFD arithmetic matches the original
  // per-source implementation exactly; only watts(before) is hoisted.
  const std::size_t nsrc = sources.size();
  scratch.src_current.resize(nsrc);
  scratch.src_ram.resize(nsrc);
  scratch.src_mips.resize(nsrc);
  for (std::size_t k = 0; k < nsrc; ++k) {
    const int vm = sources[k].first;
    scratch.src_current[k] = dc.host_of(vm);
    scratch.src_ram[k] = dc.vm_spec(vm).ram_mb;
    scratch.src_mips[k] = dc.vm_demand_mips(vm);
  }
  using ScanPartial = CandidateScratch::ScanPartial;
  scratch.scan_partials.resize(static_cast<std::size_t>(num_shards) * nsrc);
  const auto scan_shard = [&](int shard) {
    // Shard bounds are relative to host_lo (fleet plans have host_lo == 0,
    // so this is the historical global range there).
    const int begin = host_lo + plan->shard_begin(shard);
    const int end = host_lo + plan->shard_end(shard);
    ScanPartial* partials =
        scratch.scan_partials.data() +
        static_cast<std::size_t>(shard) * nsrc;
    for (std::size_t k = 0; k < nsrc; ++k) {
      ScanPartial p;
      const int current = scratch.src_current[k];
      const double vm_ram = scratch.src_ram[k];
      const double vm_mips = scratch.src_mips[k];
      // PABFD fold — skipped for consolidation sources (packing-only menu).
      if (sources[k].second != CandidateGroup::kConsolidation) {
        double best_increase = std::numeric_limits<double>::infinity();
        for (int h = begin; h < end; ++h) {
          if (h == current) continue;
          const std::size_t i = static_cast<std::size_t>(h - host_lo);
          if (!fits_fast(h, vm_ram)) continue;
          const double capacity = scratch.host_capacity[i];
          const double after =
              host_util[static_cast<std::size_t>(h)] + vm_mips / capacity;
          if (after > config.target_util_ceiling + 1e-9) continue;
          const bool active = scratch.host_active[i] != 0;
          // No side effects in the skipped work, so the early-out cannot
          // change the fold's winner.
          if (p.pabfd >= 0 && p.pabfd_active && !active) continue;
          const double increase = scratch.host_power[i]->watts(
                                      std::min(1.0, after)) -
                                  scratch.host_base_watts[i];
          const bool better = p.pabfd < 0 || (active && !p.pabfd_active) ||
                              (active == p.pabfd_active &&
                               increase < best_increase);
          if (better) {
            p.pabfd = h;
            best_increase = increase;
            p.pabfd_active = active;
          }
        }
        p.pabfd_increase = best_increase;
      }
      // Packing fold: busiest active host under the pack ceiling, with an
      // in-pod variant when a fabric is attached.
      for (int h = begin; h < end; ++h) {
        const std::size_t i = static_cast<std::size_t>(h - host_lo);
        if (h == current || scratch.host_active[i] == 0) continue;
        const double u = host_util[static_cast<std::size_t>(h)];
        if (u <= p.pack_local_util && u <= p.pack_util) continue;
        if (!feasible_fast(h, vm_ram, vm_mips, config.pack_ceiling)) continue;
        if (u > p.pack_util) {
          p.pack = h;
          p.pack_util = u;
        }
        if (network != nullptr && u > p.pack_local_util &&
            network->pod_of(h) == network->pod_of(current)) {
          p.pack_local = h;
          p.pack_local_util = u;
        }
      }
      partials[k] = p;
    }
  };
  if (fan_out) {
    exec->for_shards(scan_shard);
  } else {
    for (int s = 0; s < num_shards; ++s) scan_shard(s);
  }

  // Serial merge, shard order = ascending host order. Each merge applies
  // the same strict preference the folds used, so the result equals the
  // single full-range scan.
  scratch.pabfd_choice.resize(nsrc);
  scratch.pack_choice.resize(nsrc);
  for (std::size_t k = 0; k < nsrc; ++k) {
    int pabfd = -1;
    double pabfd_increase = std::numeric_limits<double>::infinity();
    bool pabfd_active = false;
    int pack = -1, pack_local = -1;
    double pack_util = -1.0, pack_local_util = -1.0;
    for (int s = 0; s < num_shards; ++s) {
      const ScanPartial& p =
          scratch.scan_partials[static_cast<std::size_t>(s) * nsrc + k];
      if (p.pabfd >= 0) {
        const bool better = pabfd < 0 || (p.pabfd_active && !pabfd_active) ||
                            (p.pabfd_active == pabfd_active &&
                             p.pabfd_increase < pabfd_increase);
        if (better) {
          pabfd = p.pabfd;
          pabfd_increase = p.pabfd_increase;
          pabfd_active = p.pabfd_active;
        }
      }
      if (p.pack >= 0 && p.pack_util > pack_util) {
        pack = p.pack;
        pack_util = p.pack_util;
      }
      if (p.pack_local >= 0 && p.pack_local_util > pack_local_util) {
        pack_local = p.pack_local;
        pack_local_util = p.pack_local_util;
      }
    }
    scratch.pabfd_choice[k] = pabfd;
    // In-pod packing host preferred (short copy path); global fallback.
    scratch.pack_choice[k] = pack_local >= 0 ? pack_local : pack;
  }

  // --- targets per source ---
  auto& out = scratch.candidates;
  if (out.capacity() < max_candidates) out.reserve(max_candidates);
  scratch.index_seen.reset(max_candidates);
  CandidateGroup group = CandidateGroup::kExploration;
  const auto push_candidate = [&](int vm, int host, int current) {
    if (scratch.index_seen.insert(basis.index(vm, host))) {
      add_candidate(out, basis, vm, host, current, group);
    }
  };
  // The emission loop stays serial and in source order: it is the only
  // part that draws from `rng`, so the RNG stream is consumed exactly as
  // the unsharded generator consumed it.
  for (std::size_t k = 0; k < nsrc; ++k) {
    const int vm = sources[k].first;
    const int current = scratch.src_current[k];
    const double vm_ram = scratch.src_ram[k];
    const double vm_mips = scratch.src_mips[k];
    group = sources[k].second;
    push_candidate(vm, current, current);  // no-op first

    // PABFD target (power-aware best fit) as a high-quality candidate —
    // except for consolidation sources, whose menu is packing-only.
    if (group != CandidateGroup::kConsolidation &&
        scratch.pabfd_choice[k] >= 0) {
      push_candidate(vm, scratch.pabfd_choice[k], current);
    }

    // Packing target: busiest active host that still fits under the pack
    // ceiling (consolidation move), in-pod preferred when a fabric is
    // attached — merged from the sharded scan above.
    if (scratch.pack_choice[k] >= 0) {
      push_candidate(vm, scratch.pack_choice[k], current);
    }

    // Random feasible targets (spread moves) — offered for overloaded and
    // exploration sources. Consolidation sources get packing moves only,
    // so the consolidation draw never un-packs a host.
    if (group == CandidateGroup::kConsolidation) continue;
    int added = 0;
    const int probes = std::min(domain_width, 4 * config.targets_per_source);
    for (int i = 0; i < probes && added < config.targets_per_source; ++i) {
      int h;
      if (network != nullptr && rng.bernoulli(config.local_probe_fraction)) {
        // Network-aware probe: a host from the source's own pod (short
        // migration path on the fabric).
        const int pod = network->pod_of(current);
        const int pod_base = pod * network->hosts_per_pod();
        h = pod_base + static_cast<int>(rng.index(static_cast<std::size_t>(
                           network->hosts_per_pod())));
        if (h >= num_hosts) continue;  // fabric ports beyond the fleet
      } else {
        // Fleet-wide draw, or the domain's host range for a domain call
        // (host_lo == 0 and domain_width == num_hosts otherwise).
        h = host_lo + static_cast<int>(
                          rng.index(static_cast<std::size_t>(domain_width)));
      }
      // Domain calls only target their own range (a pod probe can land
      // outside it when the domain is a topology-free block); no-op for
      // fleet calls.
      if (h < host_lo || h >= host_hi) continue;
      if (h == current) continue;
      if (!feasible_fast(h, vm_ram, vm_mips, config.target_util_ceiling))
        continue;
      push_candidate(vm, h, current);
      ++added;
    }
  }
  record_candidates(out.size());
}

std::vector<CandidateAction> generate_candidates(
    const Datacenter& dc, std::span<const double> host_util, double beta,
    const ActionBasis& basis, const CandidateConfig& config, Rng& rng,
    const FatTreeTopology* network) {
  CandidateScratch scratch;
  generate_candidates(dc, host_util, beta, basis, config, rng, scratch,
                      network);
  return std::move(scratch.candidates);
}

}  // namespace megh
