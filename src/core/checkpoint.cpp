#include "core/checkpoint.hpp"

#include <fstream>
#include <string>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"

namespace megh {

namespace {

constexpr const char* kMagicV1 = "megh-checkpoint v1";
constexpr const char* kMagicV3 = "megh-checkpoint v3";
constexpr const char* kMagicV4 = "megh-checkpoint v4";

/// Consume the magic line and return the format version it declares.
/// Throws ConfigError when the line is not a megh checkpoint magic at all;
/// version acceptance is the caller's decision, so a loader handed the
/// wrong generation of file can say which loader to use instead of
/// failing later with a confusing structural error.
int read_checkpoint_version(std::istream& in, const std::string& context) {
  std::string magic;
  std::getline(in, magic);
  const std::string_view trimmed = trim(magic);
  constexpr std::string_view kPrefix = "megh-checkpoint v";
  if (!starts_with(trimmed, kPrefix)) {
    throw ConfigError("not a megh checkpoint (bad magic): " + context);
  }
  int version = 0;
  const std::string_view digits = trimmed.substr(kPrefix.size());
  if (digits.empty()) {
    throw ConfigError("not a megh checkpoint (bad magic): " + context);
  }
  for (char c : digits) {
    if (c < '0' || c > '9') {
      throw ConfigError("not a megh checkpoint (bad magic): " + context);
    }
    version = version * 10 + (c - '0');
  }
  return version;
}

/// What each known format version holds and which loader reads it — the
/// actionable half of every version-mismatch ConfigError.
std::string version_hint(int version) {
  switch (version) {
    case 1:
      return " (v1 files hold one bare flat learner; load them with "
             "load_learner — pre-v3 policy files also predate the "
             "serialized actor RNG stream, so re-save with "
             "save_megh_policy to get an exact-restore checkpoint)";
    case 2:
      return " (v2 files hold the pre-RNG hierarchical container; they "
             "predate the serialized per-pod RNG streams — re-save with "
             "save_hierarchical_policy)";
    case 3:
      return " (v3 files hold a flat MeghPolicy; load them with "
             "load_megh_policy)";
    case 4:
      return " (v4 files hold a hierarchical per-pod container; load "
             "them with load_hierarchical_policy)";
    default:
      return "";
  }
}

void write_vector(std::ostream& out, const char* tag, const SparseVector& v) {
  out << tag << ' ' << v.nnz() << '\n';
  for (const auto& [i, value] : v.entries()) {
    out << i << ' ' << strf("%.17g", value) << '\n';
  }
}

SparseVector read_vector(std::istream& in, const char* tag,
                         std::int64_t dim, const std::string& context) {
  std::string name;
  std::size_t nnz = 0;
  if (!(in >> name >> nnz) || name != tag) {
    throw IoError("checkpoint: expected section '" + std::string(tag) +
                  "' in " + context);
  }
  SparseVector v(dim);
  v.reserve(nnz);
  // The writer emits entries in strictly ascending index order; demand the
  // same on the way in. Accepting duplicates or unsorted lines would let a
  // corrupted file silently overwrite earlier entries via set().
  std::int64_t prev = -1;
  for (std::size_t k = 0; k < nnz; ++k) {
    std::int64_t i = 0;
    double value = 0.0;
    if (!(in >> i >> value)) {
      throw IoError("checkpoint: truncated section '" + std::string(tag) +
                    "' in " + context);
    }
    MEGH_REQUIRE(i >= 0 && i < dim,
                 "checkpoint: index out of range in " + context);
    if (i <= prev) {
      throw IoError("checkpoint: duplicate or unsorted index " +
                    std::to_string(i) + " in section '" + std::string(tag) +
                    "' in " + context);
    }
    prev = i;
    v.push_back(i, value);
  }
  return v;
}

/// The v1 learner body (everything after the magic line).
void write_learner_body(std::ostream& out, const LspiLearner& learner) {
  out << "dim " << learner.dim() << " gamma "
      << strf("%.17g", learner.gamma()) << '\n';
  write_vector(out, "z", learner.z());
  write_vector(out, "theta", learner.theta());

  const SparseMatrix& B = learner.B();
  // Diagonal (dense but typically constant-dominated): store only entries,
  // one per line; then off-diagonal triplets.
  out << "Bdiag " << B.dim() << '\n';
  for (std::int64_t i = 0; i < B.dim(); ++i) {
    out << strf("%.17g", B.get(i, i)) << '\n';
  }
  out << "Boffdiag " << B.offdiag_nnz() << '\n';
  // Walk rows via row views (storage internals are private). Rows come out
  // sorted by column, so checkpoints are deterministic and reloading them
  // hits SparseVector/SparseMatrix's fast sorted-append path.
  SparseVector row(B.dim());
  for (std::int64_t r = 0; r < B.dim(); ++r) {
    B.row_into(r, row);
    for (const auto& [c, value] : row.entries()) {
      if (c == r) continue;
      out << r << ' ' << c << ' ' << strf("%.17g", value) << '\n';
    }
  }
}

struct LearnerBody {
  std::int64_t dim;
  double gamma;
  SparseMatrix B;
  SparseVector z;
  SparseVector theta;
};

LearnerBody read_learner_body(std::istream& in, const std::string& context) {
  std::string key;
  std::int64_t dim = 0;
  double gamma = 0.0;
  if (!(in >> key >> dim) || key != "dim" || !(in >> key >> gamma) ||
      key != "gamma") {
    throw IoError("checkpoint: malformed header in " + context);
  }
  MEGH_REQUIRE(dim > 0, "checkpoint: non-positive dimension");
  MEGH_REQUIRE(gamma >= 0.0 && gamma < 1.0, "checkpoint: gamma out of range");

  SparseVector z = read_vector(in, "z", dim, context);
  SparseVector theta = read_vector(in, "theta", dim, context);

  std::int64_t diag_count = 0;
  if (!(in >> key >> diag_count) || key != "Bdiag" || diag_count != dim) {
    throw IoError("checkpoint: malformed Bdiag section in " + context);
  }
  SparseMatrix B(dim, 0.0);
  for (std::int64_t i = 0; i < dim; ++i) {
    double value = 0.0;
    if (!(in >> value)) {
      throw IoError("checkpoint: truncated Bdiag in " + context);
    }
    B.set(i, i, value);
  }
  std::size_t offdiag = 0;
  if (!(in >> key >> offdiag) || key != "Boffdiag") {
    throw IoError("checkpoint: malformed Boffdiag section in " + context);
  }
  // Triplets come out of the writer row-major with ascending columns, i.e.
  // strictly lexicographically ascending (r, c); demand that order so a
  // corrupted file cannot silently overwrite an earlier entry.
  std::int64_t prev_r = -1, prev_c = -1;
  for (std::size_t k = 0; k < offdiag; ++k) {
    std::int64_t r = 0, c = 0;
    double value = 0.0;
    if (!(in >> r >> c >> value)) {
      throw IoError("checkpoint: truncated Boffdiag in " + context);
    }
    MEGH_REQUIRE(r >= 0 && r < dim && c >= 0 && c < dim,
                 "checkpoint: B index out of range");
    if (r == c) {
      throw IoError("checkpoint: diagonal entry (" + std::to_string(r) +
                    ", " + std::to_string(c) + ") in Boffdiag section in " +
                    context);
    }
    if (r < prev_r || (r == prev_r && c <= prev_c)) {
      throw IoError("checkpoint: duplicate or unsorted Boffdiag entry (" +
                    std::to_string(r) + ", " + std::to_string(c) + ") in " +
                    context);
    }
    prev_r = r;
    prev_c = c;
    B.set(r, c, value);
  }
  return LearnerBody{dim, gamma, std::move(B), std::move(z),
                     std::move(theta)};
}

struct PolicyLine {
  double temperature;
  double baseline;
  bool initialized;
};

void write_policy_line(std::ostream& out, double temperature, double baseline,
                       bool initialized) {
  out << "policy " << strf("%.17g", temperature) << ' '
      << strf("%.17g", baseline) << ' ' << (initialized ? 1 : 0) << '\n';
}

PolicyLine read_policy_line(std::istream& in, const std::string& context) {
  std::string key;
  double temp = 0.0, baseline = 0.0;
  int initialized = 0;
  if (!(in >> key >> temp >> baseline >> initialized) || key != "policy") {
    throw IoError("checkpoint: malformed policy line in " + context);
  }
  return PolicyLine{temp, baseline, initialized != 0};
}

void write_rng_line(std::ostream& out, const Rng& rng) {
  out << "rng ";
  rng.save(out);
  out << '\n';
}

void read_rng_line(std::istream& in, Rng& rng, const std::string& context) {
  std::string key;
  if (!(in >> key) || key != "rng") {
    throw IoError("checkpoint: malformed rng line in " + context);
  }
  try {
    rng.load(in);
  } catch (const IoError& e) {
    throw IoError("checkpoint: " + std::string(e.what()) + " in " + context);
  }
}

}  // namespace

void save_learner(const LspiLearner& learner,
                  const std::filesystem::path& path) {
  write_file_atomic(path, [&](std::ostream& out) {
    out << kMagicV1 << '\n';
    write_learner_body(out, learner);
  });
}

LspiLearner load_learner(const std::filesystem::path& path, double delta,
                         int max_update_support) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open checkpoint: " + path.string());
  const int version = read_checkpoint_version(in, path.string());
  if (version != 1 && version != 3) {
    throw ConfigError(
        strf("checkpoint %s is format v%d, but load_learner reads the flat "
             "v1/v3 learner formats%s",
             path.string().c_str(), version, version_hint(version).c_str()));
  }
  LearnerBody body = read_learner_body(in, path.string());

  // Everything after the Boffdiag section must be either end-of-file or
  // the policy tail save_megh_policy appends (a "policy" line, plus an
  // "rng" line in v3). Anything else is a sign the counts above were
  // corrupted (a short nnz silently drops learned state) or the file was
  // concatenated/damaged.
  std::string tail;
  if (in >> tail) {
    if (tail != "policy") {
      throw IoError("checkpoint: trailing data '" + tail +
                    "' after Boffdiag section in " + path.string());
    }
    std::string rest;
    std::getline(in, rest);
    if (in >> tail) {
      if (version != 3 || tail != "rng") {
        throw IoError("checkpoint: trailing data '" + tail +
                      "' after policy line in " + path.string());
      }
      std::getline(in, rest);
      if (in >> tail) {
        throw IoError("checkpoint: trailing data '" + tail +
                      "' after rng line in " + path.string());
      }
    }
  }

  LspiLearner learner(body.dim, body.gamma, delta, max_update_support);
  learner.restore(std::move(body.B), std::move(body.z),
                  std::move(body.theta));
  return learner;
}

void write_megh_policy(std::ostream& out, const MeghPolicy& policy) {
  out << kMagicV3 << '\n';
  write_learner_body(out, policy.learner());
  write_policy_line(out, policy.temperature(), policy.cost_baseline(),
                    policy.baseline_initialized());
  write_rng_line(out, policy.rng());
}

void read_megh_policy(std::istream& in, MeghPolicy& policy,
                      const std::string& context) {
  const int version = read_checkpoint_version(in, context);
  if (version != 3) {
    throw ConfigError(
        strf("checkpoint %s is format v%d, but load_megh_policy reads the "
             "v3 flat policy format%s",
             context.c_str(), version, version_hint(version).c_str()));
  }
  LearnerBody body = read_learner_body(in, context);
  LspiLearner& learner = policy.mutable_learner();
  MEGH_REQUIRE(body.dim == learner.dim(),
               strf("checkpoint dimension %lld does not match policy %lld",
                    static_cast<long long>(body.dim),
                    static_cast<long long>(learner.dim())));
  learner.restore(std::move(body.B), std::move(body.z),
                  std::move(body.theta));

  const PolicyLine pl = read_policy_line(in, context);
  policy.set_temperature(pl.temperature);
  policy.set_cost_baseline(pl.baseline, pl.initialized);
  read_rng_line(in, policy.mutable_rng(), context);
}

void save_megh_policy(const MeghPolicy& policy,
                      const std::filesystem::path& path) {
  write_file_atomic(path, [&](std::ostream& out) {
    write_megh_policy(out, policy);
  });
}

void load_megh_policy(MeghPolicy& policy, const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open checkpoint: " + path.string());
  read_megh_policy(in, policy, path.string());
  std::string tail;
  if (in >> tail) {
    throw IoError("checkpoint: trailing data '" + tail + "' after rng line "
                  "in " + path.string());
  }
}

void save_hierarchical_policy(const HierarchicalMeghPolicy& policy,
                              const std::filesystem::path& path) {
  MEGH_REQUIRE(!policy.pods_.empty(),
               "save_hierarchical_policy before begin()");
  write_file_atomic(path, [&](std::ostream& out) {
    out << kMagicV4 << '\n';
    out << "pods " << policy.num_pods() << " hosts "
        << policy.basis_->num_hosts() << " vms " << policy.basis_->num_vms()
        << '\n';
    write_policy_line(out, policy.temperature(), policy.cost_baseline(),
                      policy.baseline_initialized());
    for (int p = 0; p < policy.num_pods(); ++p) {
      const auto& pod = policy.pods_[static_cast<std::size_t>(p)];
      const LspiLearner& learner = *pod.learner;
      out << "pod " << p << " begin " << pod.host_begin << " end "
          << pod.host_end << " cap " << pod.cap << " next " << pod.next_slot
          << " gamma " << strf("%.17g", learner.gamma()) << '\n';
      write_rng_line(out, pod.rng);
      int occupied = 0;
      for (int slot = 0; slot < pod.next_slot; ++slot) {
        if (pod.vm_of_slot[static_cast<std::size_t>(slot)] >= 0) ++occupied;
      }
      out << "slots " << occupied << '\n';
      for (int slot = 0; slot < pod.next_slot; ++slot) {
        const int vm = pod.vm_of_slot[static_cast<std::size_t>(slot)];
        if (vm >= 0) out << slot << ' ' << vm << '\n';
      }
      write_vector(out, "z", learner.z());
      write_vector(out, "theta", learner.theta());
      // Only materialized rows — a virgin row reads as default_diag·I, and
      // at pod dims ~10⁷ writing a dense diagonal would turn a kilobyte
      // checkpoint into a multi-hundred-megabyte one.
      const SparseMatrix& B = learner.B();
      const std::vector<SparseMatrix::Index> live = B.live_row_indices();
      out << "Bdiag " << live.size() << " default "
          << strf("%.17g", B.default_diag()) << '\n';
      for (const SparseMatrix::Index r : live) {
        out << r << ' ' << strf("%.17g", B.get(r, r)) << '\n';
      }
      out << "Boffdiag " << B.offdiag_nnz() << '\n';
      SparseVector row(B.dim());
      for (const SparseMatrix::Index r : live) {
        B.row_into(r, row);
        for (const auto& [c, value] : row.entries()) {
          if (c == r) continue;
          out << r << ' ' << c << ' ' << strf("%.17g", value) << '\n';
        }
      }
    }
    out << "end\n";
  });
}

void load_hierarchical_policy(HierarchicalMeghPolicy& policy,
                              const std::filesystem::path& path) {
  MEGH_REQUIRE(!policy.pods_.empty(),
               "load_hierarchical_policy before begin()");
  std::ifstream in(path);
  if (!in) throw IoError("cannot open checkpoint: " + path.string());
  const int version = read_checkpoint_version(in, path.string());
  if (version != 4) {
    throw ConfigError(
        strf("checkpoint %s is format v%d, but load_hierarchical_policy "
             "reads the v4 per-pod container%s",
             path.string().c_str(), version, version_hint(version).c_str()));
  }
  std::string key;
  int pods = 0, hosts = 0, vms = 0;
  if (!(in >> key >> pods) || key != "pods" || !(in >> key >> hosts) ||
      key != "hosts" || !(in >> key >> vms) || key != "vms") {
    throw IoError("checkpoint: malformed header in " + path.string());
  }
  MEGH_REQUIRE(pods == policy.num_pods() &&
                   hosts == policy.basis_->num_hosts() &&
                   vms == policy.basis_->num_vms(),
               strf("checkpoint shape (%d pods, %d hosts, %d VMs) does not "
                    "match the policy (%d pods, %d hosts, %d VMs)",
                    pods, hosts, vms, policy.num_pods(),
                    policy.basis_->num_hosts(), policy.basis_->num_vms()));
  const PolicyLine pl = read_policy_line(in, path.string());

  // All VM → pod/slot assignments are rebuilt from the file; entries of
  // VMs the checkpoint does not map stay unassigned and are re-slotted by
  // the next membership rebuild.
  std::fill(policy.pod_of_vm_.begin(), policy.pod_of_vm_.end(), -1);
  std::fill(policy.slot_of_vm_.begin(), policy.slot_of_vm_.end(), -1);

  for (int p = 0; p < pods; ++p) {
    auto& pod = policy.pods_[static_cast<std::size_t>(p)];
    int pod_id = -1, begin = 0, end = 0, cap = 0, next = 0;
    double gamma = 0.0;
    if (!(in >> key >> pod_id) || key != "pod" || !(in >> key >> begin) ||
        key != "begin" || !(in >> key >> end) || key != "end" ||
        !(in >> key >> cap) || key != "cap" || !(in >> key >> next) ||
        key != "next" || !(in >> key >> gamma) || key != "gamma") {
      throw IoError(strf("checkpoint: malformed pod %d header in %s", p,
                         path.string().c_str()));
    }
    MEGH_REQUIRE(pod_id == p, "checkpoint: pods out of order");
    MEGH_REQUIRE(begin == pod.host_begin && end == pod.host_end,
                 strf("checkpoint pod %d hosts [%d, %d) does not match the "
                      "policy's shard [%d, %d)",
                      p, begin, end, pod.host_begin, pod.host_end));
    MEGH_REQUIRE(cap > 0 && next >= 0 && next <= cap,
                 "checkpoint: pod slot counts out of range");
    MEGH_REQUIRE(gamma >= 0.0 && gamma < 1.0,
                 "checkpoint: gamma out of range");
    read_rng_line(in, pod.rng, path.string() + strf(" (pod %d)", p));

    pod.cap = cap;
    pod.next_slot = next;
    pod.vm_of_slot.assign(static_cast<std::size_t>(cap), -1);
    pod.free_slots.clear();
    int occupied = 0;
    if (!(in >> key >> occupied) || key != "slots" || occupied < 0 ||
        occupied > next) {
      throw IoError(strf("checkpoint: malformed slots section of pod %d in "
                         "%s",
                         p, path.string().c_str()));
    }
    int prev_slot = -1;
    for (int k = 0; k < occupied; ++k) {
      int slot = 0, vm = 0;
      if (!(in >> slot >> vm)) {
        throw IoError(strf("checkpoint: truncated slot map of pod %d in %s",
                           p, path.string().c_str()));
      }
      MEGH_REQUIRE(slot > prev_slot && slot < next,
                   "checkpoint: slot map out of order or out of range");
      MEGH_REQUIRE(vm >= 0 && vm < vms, "checkpoint: VM id out of range");
      MEGH_REQUIRE(policy.pod_of_vm_[static_cast<std::size_t>(vm)] == -1,
                   "checkpoint: VM mapped twice");
      prev_slot = slot;
      pod.vm_of_slot[static_cast<std::size_t>(slot)] = vm;
      policy.pod_of_vm_[static_cast<std::size_t>(vm)] =
          static_cast<std::int32_t>(p);
      policy.slot_of_vm_[static_cast<std::size_t>(vm)] =
          static_cast<std::int32_t>(slot);
    }
    // Handed-out-but-unoccupied slots go back on the free list,
    // descending so the smallest is reused first (same as the runtime).
    for (int slot = next - 1; slot >= 0; --slot) {
      if (pod.vm_of_slot[static_cast<std::size_t>(slot)] < 0) {
        pod.free_slots.push_back(slot);
      }
    }

    const std::int64_t dim = static_cast<std::int64_t>(cap) *
                             static_cast<std::int64_t>(end - begin);
    const std::string context =
        path.string() + strf(" (pod %d)", p);
    SparseVector z = read_vector(in, "z", dim, context);
    SparseVector theta = read_vector(in, "theta", dim, context);

    std::int64_t live = 0;
    double default_diag = 0.0;
    if (!(in >> key >> live) || key != "Bdiag" ||
        !(in >> key >> default_diag) || key != "default" || live < 0 ||
        live > dim) {
      throw IoError("checkpoint: malformed Bdiag section in " + context);
    }
    SparseMatrix B(dim, default_diag);
    std::int64_t prev = -1;
    for (std::int64_t k = 0; k < live; ++k) {
      std::int64_t r = 0;
      double value = 0.0;
      if (!(in >> r >> value)) {
        throw IoError("checkpoint: truncated Bdiag in " + context);
      }
      MEGH_REQUIRE(r > prev && r < dim,
                   "checkpoint: Bdiag out of order or out of range in " +
                       context);
      prev = r;
      B.set(r, r, value);
    }
    std::size_t offdiag = 0;
    if (!(in >> key >> offdiag) || key != "Boffdiag") {
      throw IoError("checkpoint: malformed Boffdiag section in " + context);
    }
    std::int64_t prev_r = -1, prev_c = -1;
    for (std::size_t k = 0; k < offdiag; ++k) {
      std::int64_t r = 0, c = 0;
      double value = 0.0;
      if (!(in >> r >> c >> value)) {
        throw IoError("checkpoint: truncated Boffdiag in " + context);
      }
      MEGH_REQUIRE(r >= 0 && r < dim && c >= 0 && c < dim && r != c,
                   "checkpoint: B index out of range in " + context);
      if (r < prev_r || (r == prev_r && c <= prev_c)) {
        throw IoError("checkpoint: duplicate or unsorted Boffdiag entry in " +
                      context);
      }
      prev_r = r;
      prev_c = c;
      B.set(r, c, value);
    }

    // The begun learner's dimensions may differ (its cap came from the
    // current placement, the file's from the saved one): rebuild at the
    // file's shape, then restore the exact state.
    pod.learner = std::make_unique<LspiLearner>(
        dim, gamma, policy.config_.base.delta,
        policy.config_.base.max_update_support);
    pod.learner->restore(std::move(B), std::move(z), std::move(theta));

    // Slot-indexed scratch follows the restored capacity; transient
    // recovery state does not survive the process boundary.
    pod.pending.clear();
    pod.staged_rollback = false;
    pod.candidates_of_slot.assign(static_cast<std::size_t>(cap), {});
    for (std::vector<std::size_t>& list : pod.candidates_of_slot) {
      list.reserve(static_cast<std::size_t>(
          policy.config_.base.candidates.targets_per_source + 3));
    }
    pod.slot_used.assign(static_cast<std::size_t>(cap), 0);
    pod.touched_slots.clear();
    pod.retries.clear();
    pod.checkpoint = HierarchicalMeghPolicy::CriticSnapshot{};
    pod.faults_last_step = 0;
  }
  std::string tail;
  if (!(in >> tail) || tail != "end") {
    throw IoError("checkpoint: missing end marker in " + path.string());
  }
  if (in >> tail) {
    throw IoError("checkpoint: trailing data '" + tail + "' in " +
                  path.string());
  }
  policy.set_temperature(pl.temperature);
  policy.set_cost_baseline(pl.baseline, pl.initialized);
  policy.emitted_.clear();
  policy.has_pending_cost_ = false;
}

}  // namespace megh
