#include "core/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "core/hierarchical_megh.hpp"
#include "core/megh_policy.hpp"

namespace megh {

namespace {

constexpr const char* kMagic = "megh-checkpoint v1";
constexpr const char* kMagicV2 = "megh-checkpoint v2";

/// Consume the magic line and return the format version it declares.
/// Throws ConfigError when the line is not a megh checkpoint magic at all;
/// version acceptance is the caller's decision, so a loader handed the
/// wrong generation of file can say which loader to use instead of
/// failing later with a confusing structural error.
int read_checkpoint_version(std::istream& in, const std::string& context) {
  std::string magic;
  std::getline(in, magic);
  const std::string_view trimmed = trim(magic);
  constexpr std::string_view kPrefix = "megh-checkpoint v";
  if (!starts_with(trimmed, kPrefix)) {
    throw ConfigError("not a megh checkpoint (bad magic): " + context);
  }
  int version = 0;
  const std::string_view digits = trimmed.substr(kPrefix.size());
  if (digits.empty()) {
    throw ConfigError("not a megh checkpoint (bad magic): " + context);
  }
  for (char c : digits) {
    if (c < '0' || c > '9') {
      throw ConfigError("not a megh checkpoint (bad magic): " + context);
    }
    version = version * 10 + (c - '0');
  }
  return version;
}

void write_vector(std::ofstream& out, const char* tag,
                  const SparseVector& v) {
  out << tag << ' ' << v.nnz() << '\n';
  for (const auto& [i, value] : v.entries()) {
    out << i << ' ' << strf("%.17g", value) << '\n';
  }
}

SparseVector read_vector(std::istream& in, const char* tag,
                         std::int64_t dim, const std::string& context) {
  std::string name;
  std::size_t nnz = 0;
  if (!(in >> name >> nnz) || name != tag) {
    throw IoError("checkpoint: expected section '" + std::string(tag) +
                  "' in " + context);
  }
  SparseVector v(dim);
  v.reserve(nnz);
  // The writer emits entries in strictly ascending index order; demand the
  // same on the way in. Accepting duplicates or unsorted lines would let a
  // corrupted file silently overwrite earlier entries via set().
  std::int64_t prev = -1;
  for (std::size_t k = 0; k < nnz; ++k) {
    std::int64_t i = 0;
    double value = 0.0;
    if (!(in >> i >> value)) {
      throw IoError("checkpoint: truncated section '" + std::string(tag) +
                    "' in " + context);
    }
    MEGH_REQUIRE(i >= 0 && i < dim,
                 "checkpoint: index out of range in " + context);
    if (i <= prev) {
      throw IoError("checkpoint: duplicate or unsorted index " +
                    std::to_string(i) + " in section '" + std::string(tag) +
                    "' in " + context);
    }
    prev = i;
    v.push_back(i, value);
  }
  return v;
}

}  // namespace

void save_learner(const LspiLearner& learner,
                  const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) throw IoError("cannot open checkpoint for writing: " + path.string());
  out << kMagic << '\n';
  out << "dim " << learner.dim() << " gamma " << strf("%.17g", learner.gamma())
      << '\n';
  write_vector(out, "z", learner.z());
  write_vector(out, "theta", learner.theta());

  const SparseMatrix& B = learner.B();
  // Diagonal (dense but typically constant-dominated): store only entries,
  // one per line; then off-diagonal triplets.
  out << "Bdiag " << B.dim() << '\n';
  for (std::int64_t i = 0; i < B.dim(); ++i) {
    out << strf("%.17g", B.get(i, i)) << '\n';
  }
  out << "Boffdiag " << B.offdiag_nnz() << '\n';
  // Walk rows via row views (storage internals are private). Rows come out
  // sorted by column, so checkpoints are deterministic and reloading them
  // hits SparseVector/SparseMatrix's fast sorted-append path.
  SparseVector row(B.dim());
  for (std::int64_t r = 0; r < B.dim(); ++r) {
    B.row_into(r, row);
    for (const auto& [c, value] : row.entries()) {
      if (c == r) continue;
      out << r << ' ' << c << ' ' << strf("%.17g", value) << '\n';
    }
  }
  if (!out) throw IoError("write failure on checkpoint: " + path.string());
}

LspiLearner load_learner(const std::filesystem::path& path, double delta,
                         int max_update_support) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open checkpoint: " + path.string());
  const int version = read_checkpoint_version(in, path.string());
  if (version != 1) {
    throw ConfigError(
        strf("checkpoint %s is format v%d, but load_learner reads the flat "
             "v1 learner format%s",
             path.string().c_str(), version,
             version == 2 ? " (v2 files hold a hierarchical per-pod "
                            "container; load them with "
                            "load_hierarchical_policy)"
                          : ""));
  }
  std::string key;
  std::int64_t dim = 0;
  double gamma = 0.0;
  if (!(in >> key >> dim) || key != "dim" || !(in >> key >> gamma) ||
      key != "gamma") {
    throw IoError("checkpoint: malformed header in " + path.string());
  }
  MEGH_REQUIRE(dim > 0, "checkpoint: non-positive dimension");
  MEGH_REQUIRE(gamma >= 0.0 && gamma < 1.0, "checkpoint: gamma out of range");

  SparseVector z = read_vector(in, "z", dim, path.string());
  SparseVector theta = read_vector(in, "theta", dim, path.string());

  std::int64_t diag_count = 0;
  if (!(in >> key >> diag_count) || key != "Bdiag" || diag_count != dim) {
    throw IoError("checkpoint: malformed Bdiag section in " + path.string());
  }
  SparseMatrix B(dim, 0.0);
  for (std::int64_t i = 0; i < dim; ++i) {
    double value = 0.0;
    if (!(in >> value)) {
      throw IoError("checkpoint: truncated Bdiag in " + path.string());
    }
    B.set(i, i, value);
  }
  std::size_t offdiag = 0;
  if (!(in >> key >> offdiag) || key != "Boffdiag") {
    throw IoError("checkpoint: malformed Boffdiag section in " +
                  path.string());
  }
  // Triplets come out of the writer row-major with ascending columns, i.e.
  // strictly lexicographically ascending (r, c); demand that order so a
  // corrupted file cannot silently overwrite an earlier entry.
  std::int64_t prev_r = -1, prev_c = -1;
  for (std::size_t k = 0; k < offdiag; ++k) {
    std::int64_t r = 0, c = 0;
    double value = 0.0;
    if (!(in >> r >> c >> value)) {
      throw IoError("checkpoint: truncated Boffdiag in " + path.string());
    }
    MEGH_REQUIRE(r >= 0 && r < dim && c >= 0 && c < dim,
                 "checkpoint: B index out of range");
    if (r == c) {
      throw IoError("checkpoint: diagonal entry (" + std::to_string(r) +
                    ", " + std::to_string(c) + ") in Boffdiag section in " +
                    path.string());
    }
    if (r < prev_r || (r == prev_r && c <= prev_c)) {
      throw IoError("checkpoint: duplicate or unsorted Boffdiag entry (" +
                    std::to_string(r) + ", " + std::to_string(c) + ") in " +
                    path.string());
    }
    prev_r = r;
    prev_c = c;
    B.set(r, c, value);
  }

  // Everything after the Boffdiag section must be either end-of-file or the
  // single trailing "policy" line save_megh_policy appends. Anything else is
  // a sign the counts above were corrupted (a short nnz silently drops
  // learned state) or the file was concatenated/damaged.
  std::string tail;
  if (in >> tail) {
    if (tail != "policy") {
      throw IoError("checkpoint: trailing data '" + tail +
                    "' after Boffdiag section in " + path.string());
    }
    std::string policy_rest;
    std::getline(in, policy_rest);
    if (in >> tail) {
      throw IoError("checkpoint: trailing data '" + tail +
                    "' after policy line in " + path.string());
    }
  }

  LspiLearner learner(dim, gamma, delta, max_update_support);
  learner.restore(std::move(B), std::move(z), std::move(theta));
  return learner;
}

void save_megh_policy(const MeghPolicy& policy,
                      const std::filesystem::path& path) {
  save_learner(policy.learner(), path);
  std::ofstream out(path, std::ios::app);
  if (!out) throw IoError("cannot append policy state: " + path.string());
  out << "policy " << strf("%.17g", policy.temperature()) << ' '
      << strf("%.17g", policy.cost_baseline()) << ' '
      << (policy.baseline_initialized() ? 1 : 0) << '\n';
}

void load_megh_policy(MeghPolicy& policy, const std::filesystem::path& path) {
  LspiLearner& learner = policy.mutable_learner();
  LspiLearner loaded = load_learner(path);
  MEGH_REQUIRE(loaded.dim() == learner.dim(),
               strf("checkpoint dimension %lld does not match policy %lld",
                    static_cast<long long>(loaded.dim()),
                    static_cast<long long>(learner.dim())));
  learner.restore(loaded.B(), loaded.z(), loaded.theta());

  // Trailing policy line.
  std::ifstream in(path);
  std::string line, policy_line;
  while (std::getline(in, line)) {
    if (starts_with(trim(line), "policy ")) policy_line = std::string(trim(line));
  }
  MEGH_REQUIRE(!policy_line.empty(),
               "checkpoint has no policy section: " + path.string());
  std::istringstream ps(policy_line);
  std::string key;
  double temp = 0.0, baseline = 0.0;
  int initialized = 0;
  if (!(ps >> key >> temp >> baseline >> initialized)) {
    throw IoError("checkpoint: malformed policy line in " + path.string());
  }
  policy.set_temperature(temp);
  policy.set_cost_baseline(baseline, initialized != 0);
}

void save_hierarchical_policy(const HierarchicalMeghPolicy& policy,
                              const std::filesystem::path& path) {
  MEGH_REQUIRE(!policy.pods_.empty(),
               "save_hierarchical_policy before begin()");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open checkpoint for writing: " + path.string());
  }
  out << kMagicV2 << '\n';
  out << "pods " << policy.num_pods() << " hosts "
      << policy.basis_->num_hosts() << " vms " << policy.basis_->num_vms()
      << '\n';
  out << "policy " << strf("%.17g", policy.temperature()) << ' '
      << strf("%.17g", policy.cost_baseline()) << ' '
      << (policy.baseline_initialized() ? 1 : 0) << '\n';
  for (int p = 0; p < policy.num_pods(); ++p) {
    const auto& pod = policy.pods_[static_cast<std::size_t>(p)];
    const LspiLearner& learner = *pod.learner;
    out << "pod " << p << " begin " << pod.host_begin << " end "
        << pod.host_end << " cap " << pod.cap << " next " << pod.next_slot
        << " gamma " << strf("%.17g", learner.gamma()) << '\n';
    int occupied = 0;
    for (int slot = 0; slot < pod.next_slot; ++slot) {
      if (pod.vm_of_slot[static_cast<std::size_t>(slot)] >= 0) ++occupied;
    }
    out << "slots " << occupied << '\n';
    for (int slot = 0; slot < pod.next_slot; ++slot) {
      const int vm = pod.vm_of_slot[static_cast<std::size_t>(slot)];
      if (vm >= 0) out << slot << ' ' << vm << '\n';
    }
    write_vector(out, "z", learner.z());
    write_vector(out, "theta", learner.theta());
    // Only materialized rows — a virgin row reads as default_diag·I, and
    // at pod dims ~10⁷ writing a dense diagonal would turn a kilobyte
    // checkpoint into a multi-hundred-megabyte one.
    const SparseMatrix& B = learner.B();
    const std::vector<SparseMatrix::Index> live = B.live_row_indices();
    out << "Bdiag " << live.size() << " default "
        << strf("%.17g", B.default_diag()) << '\n';
    for (const SparseMatrix::Index r : live) {
      out << r << ' ' << strf("%.17g", B.get(r, r)) << '\n';
    }
    out << "Boffdiag " << B.offdiag_nnz() << '\n';
    SparseVector row(B.dim());
    for (const SparseMatrix::Index r : live) {
      B.row_into(r, row);
      for (const auto& [c, value] : row.entries()) {
        if (c == r) continue;
        out << r << ' ' << c << ' ' << strf("%.17g", value) << '\n';
      }
    }
  }
  out << "end\n";
  if (!out) throw IoError("write failure on checkpoint: " + path.string());
}

void load_hierarchical_policy(HierarchicalMeghPolicy& policy,
                              const std::filesystem::path& path) {
  MEGH_REQUIRE(!policy.pods_.empty(),
               "load_hierarchical_policy before begin()");
  std::ifstream in(path);
  if (!in) throw IoError("cannot open checkpoint: " + path.string());
  const int version = read_checkpoint_version(in, path.string());
  if (version != 2) {
    throw ConfigError(
        strf("checkpoint %s is format v%d, but load_hierarchical_policy "
             "reads the v2 per-pod container%s",
             path.string().c_str(), version,
             version == 1 ? " (v1 files hold one flat learner; load them "
                            "with load_learner / load_megh_policy)"
                          : ""));
  }
  std::string key;
  int pods = 0, hosts = 0, vms = 0;
  if (!(in >> key >> pods) || key != "pods" || !(in >> key >> hosts) ||
      key != "hosts" || !(in >> key >> vms) || key != "vms") {
    throw IoError("checkpoint: malformed header in " + path.string());
  }
  MEGH_REQUIRE(pods == policy.num_pods() &&
                   hosts == policy.basis_->num_hosts() &&
                   vms == policy.basis_->num_vms(),
               strf("checkpoint shape (%d pods, %d hosts, %d VMs) does not "
                    "match the policy (%d pods, %d hosts, %d VMs)",
                    pods, hosts, vms, policy.num_pods(),
                    policy.basis_->num_hosts(), policy.basis_->num_vms()));
  double temp = 0.0, baseline = 0.0;
  int initialized = 0;
  if (!(in >> key >> temp >> baseline >> initialized) || key != "policy") {
    throw IoError("checkpoint: malformed policy line in " + path.string());
  }

  // All VM → pod/slot assignments are rebuilt from the file; entries of
  // VMs the checkpoint does not map stay unassigned and are re-slotted by
  // the next membership rebuild.
  std::fill(policy.pod_of_vm_.begin(), policy.pod_of_vm_.end(), -1);
  std::fill(policy.slot_of_vm_.begin(), policy.slot_of_vm_.end(), -1);

  for (int p = 0; p < pods; ++p) {
    auto& pod = policy.pods_[static_cast<std::size_t>(p)];
    int pod_id = -1, begin = 0, end = 0, cap = 0, next = 0;
    double gamma = 0.0;
    if (!(in >> key >> pod_id) || key != "pod" || !(in >> key >> begin) ||
        key != "begin" || !(in >> key >> end) || key != "end" ||
        !(in >> key >> cap) || key != "cap" || !(in >> key >> next) ||
        key != "next" || !(in >> key >> gamma) || key != "gamma") {
      throw IoError(strf("checkpoint: malformed pod %d header in %s", p,
                         path.string().c_str()));
    }
    MEGH_REQUIRE(pod_id == p, "checkpoint: pods out of order");
    MEGH_REQUIRE(begin == pod.host_begin && end == pod.host_end,
                 strf("checkpoint pod %d hosts [%d, %d) does not match the "
                      "policy's shard [%d, %d)",
                      p, begin, end, pod.host_begin, pod.host_end));
    MEGH_REQUIRE(cap > 0 && next >= 0 && next <= cap,
                 "checkpoint: pod slot counts out of range");
    MEGH_REQUIRE(gamma >= 0.0 && gamma < 1.0,
                 "checkpoint: gamma out of range");

    pod.cap = cap;
    pod.next_slot = next;
    pod.vm_of_slot.assign(static_cast<std::size_t>(cap), -1);
    pod.free_slots.clear();
    int occupied = 0;
    if (!(in >> key >> occupied) || key != "slots" || occupied < 0 ||
        occupied > next) {
      throw IoError(strf("checkpoint: malformed slots section of pod %d in "
                         "%s",
                         p, path.string().c_str()));
    }
    int prev_slot = -1;
    for (int k = 0; k < occupied; ++k) {
      int slot = 0, vm = 0;
      if (!(in >> slot >> vm)) {
        throw IoError(strf("checkpoint: truncated slot map of pod %d in %s",
                           p, path.string().c_str()));
      }
      MEGH_REQUIRE(slot > prev_slot && slot < next,
                   "checkpoint: slot map out of order or out of range");
      MEGH_REQUIRE(vm >= 0 && vm < vms, "checkpoint: VM id out of range");
      MEGH_REQUIRE(policy.pod_of_vm_[static_cast<std::size_t>(vm)] == -1,
                   "checkpoint: VM mapped twice");
      prev_slot = slot;
      pod.vm_of_slot[static_cast<std::size_t>(slot)] = vm;
      policy.pod_of_vm_[static_cast<std::size_t>(vm)] =
          static_cast<std::int32_t>(p);
      policy.slot_of_vm_[static_cast<std::size_t>(vm)] =
          static_cast<std::int32_t>(slot);
    }
    // Handed-out-but-unoccupied slots go back on the free list,
    // descending so the smallest is reused first (same as the runtime).
    for (int slot = next - 1; slot >= 0; --slot) {
      if (pod.vm_of_slot[static_cast<std::size_t>(slot)] < 0) {
        pod.free_slots.push_back(slot);
      }
    }

    const std::int64_t dim = static_cast<std::int64_t>(cap) *
                             static_cast<std::int64_t>(end - begin);
    const std::string context =
        path.string() + strf(" (pod %d)", p);
    SparseVector z = read_vector(in, "z", dim, context);
    SparseVector theta = read_vector(in, "theta", dim, context);

    std::int64_t live = 0;
    double default_diag = 0.0;
    if (!(in >> key >> live) || key != "Bdiag" ||
        !(in >> key >> default_diag) || key != "default" || live < 0 ||
        live > dim) {
      throw IoError("checkpoint: malformed Bdiag section in " + context);
    }
    SparseMatrix B(dim, default_diag);
    std::int64_t prev = -1;
    for (std::int64_t k = 0; k < live; ++k) {
      std::int64_t r = 0;
      double value = 0.0;
      if (!(in >> r >> value)) {
        throw IoError("checkpoint: truncated Bdiag in " + context);
      }
      MEGH_REQUIRE(r > prev && r < dim,
                   "checkpoint: Bdiag out of order or out of range in " +
                       context);
      prev = r;
      B.set(r, r, value);
    }
    std::size_t offdiag = 0;
    if (!(in >> key >> offdiag) || key != "Boffdiag") {
      throw IoError("checkpoint: malformed Boffdiag section in " + context);
    }
    std::int64_t prev_r = -1, prev_c = -1;
    for (std::size_t k = 0; k < offdiag; ++k) {
      std::int64_t r = 0, c = 0;
      double value = 0.0;
      if (!(in >> r >> c >> value)) {
        throw IoError("checkpoint: truncated Boffdiag in " + context);
      }
      MEGH_REQUIRE(r >= 0 && r < dim && c >= 0 && c < dim && r != c,
                   "checkpoint: B index out of range in " + context);
      if (r < prev_r || (r == prev_r && c <= prev_c)) {
        throw IoError("checkpoint: duplicate or unsorted Boffdiag entry in " +
                      context);
      }
      prev_r = r;
      prev_c = c;
      B.set(r, c, value);
    }

    // The begun learner's dimensions may differ (its cap came from the
    // current placement, the file's from the saved one): rebuild at the
    // file's shape, then restore the exact state.
    pod.learner = std::make_unique<LspiLearner>(
        dim, gamma, policy.config_.base.delta,
        policy.config_.base.max_update_support);
    pod.learner->restore(std::move(B), std::move(z), std::move(theta));

    // Slot-indexed scratch follows the restored capacity; transient
    // recovery state does not survive the process boundary.
    pod.pending.clear();
    pod.staged_rollback = false;
    pod.candidates_of_slot.assign(static_cast<std::size_t>(cap), {});
    for (std::vector<std::size_t>& list : pod.candidates_of_slot) {
      list.reserve(static_cast<std::size_t>(
          policy.config_.base.candidates.targets_per_source + 3));
    }
    pod.slot_used.assign(static_cast<std::size_t>(cap), 0);
    pod.touched_slots.clear();
    pod.retries.clear();
    pod.checkpoint = HierarchicalMeghPolicy::CriticSnapshot{};
    pod.faults_last_step = 0;
  }
  std::string tail;
  if (!(in >> tail) || tail != "end") {
    throw IoError("checkpoint: missing end marker in " + path.string());
  }
  if (in >> tail) {
    throw IoError("checkpoint: trailing data '" + tail + "' in " +
                  path.string());
  }
  policy.set_temperature(temp);
  policy.set_cost_baseline(baseline, initialized != 0);
  policy.emitted_.clear();
  policy.has_pending_cost_ = false;
}

}  // namespace megh
