#include "core/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"

namespace megh {

namespace {

constexpr const char* kMagic = "megh-checkpoint v1";

void write_vector(std::ofstream& out, const char* tag,
                  const SparseVector& v) {
  out << tag << ' ' << v.nnz() << '\n';
  for (const auto& [i, value] : v.entries()) {
    out << i << ' ' << strf("%.17g", value) << '\n';
  }
}

SparseVector read_vector(std::istream& in, const char* tag,
                         std::int64_t dim, const std::string& context) {
  std::string name;
  std::size_t nnz = 0;
  if (!(in >> name >> nnz) || name != tag) {
    throw IoError("checkpoint: expected section '" + std::string(tag) +
                  "' in " + context);
  }
  SparseVector v(dim);
  v.reserve(nnz);
  // The writer emits entries in strictly ascending index order; demand the
  // same on the way in. Accepting duplicates or unsorted lines would let a
  // corrupted file silently overwrite earlier entries via set().
  std::int64_t prev = -1;
  for (std::size_t k = 0; k < nnz; ++k) {
    std::int64_t i = 0;
    double value = 0.0;
    if (!(in >> i >> value)) {
      throw IoError("checkpoint: truncated section '" + std::string(tag) +
                    "' in " + context);
    }
    MEGH_REQUIRE(i >= 0 && i < dim,
                 "checkpoint: index out of range in " + context);
    if (i <= prev) {
      throw IoError("checkpoint: duplicate or unsorted index " +
                    std::to_string(i) + " in section '" + std::string(tag) +
                    "' in " + context);
    }
    prev = i;
    v.push_back(i, value);
  }
  return v;
}

}  // namespace

void save_learner(const LspiLearner& learner,
                  const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) throw IoError("cannot open checkpoint for writing: " + path.string());
  out << kMagic << '\n';
  out << "dim " << learner.dim() << " gamma " << strf("%.17g", learner.gamma())
      << '\n';
  write_vector(out, "z", learner.z());
  write_vector(out, "theta", learner.theta());

  const SparseMatrix& B = learner.B();
  // Diagonal (dense but typically constant-dominated): store only entries,
  // one per line; then off-diagonal triplets.
  out << "Bdiag " << B.dim() << '\n';
  for (std::int64_t i = 0; i < B.dim(); ++i) {
    out << strf("%.17g", B.get(i, i)) << '\n';
  }
  out << "Boffdiag " << B.offdiag_nnz() << '\n';
  // Walk rows via row views (storage internals are private). Rows come out
  // sorted by column, so checkpoints are deterministic and reloading them
  // hits SparseVector/SparseMatrix's fast sorted-append path.
  SparseVector row(B.dim());
  for (std::int64_t r = 0; r < B.dim(); ++r) {
    B.row_into(r, row);
    for (const auto& [c, value] : row.entries()) {
      if (c == r) continue;
      out << r << ' ' << c << ' ' << strf("%.17g", value) << '\n';
    }
  }
  if (!out) throw IoError("write failure on checkpoint: " + path.string());
}

LspiLearner load_learner(const std::filesystem::path& path, double delta,
                         int max_update_support) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open checkpoint: " + path.string());
  std::string magic;
  std::getline(in, magic);
  if (trim(magic) != kMagic) {
    throw ConfigError("not a megh checkpoint (bad magic): " + path.string());
  }
  std::string key;
  std::int64_t dim = 0;
  double gamma = 0.0;
  if (!(in >> key >> dim) || key != "dim" || !(in >> key >> gamma) ||
      key != "gamma") {
    throw IoError("checkpoint: malformed header in " + path.string());
  }
  MEGH_REQUIRE(dim > 0, "checkpoint: non-positive dimension");
  MEGH_REQUIRE(gamma >= 0.0 && gamma < 1.0, "checkpoint: gamma out of range");

  SparseVector z = read_vector(in, "z", dim, path.string());
  SparseVector theta = read_vector(in, "theta", dim, path.string());

  std::int64_t diag_count = 0;
  if (!(in >> key >> diag_count) || key != "Bdiag" || diag_count != dim) {
    throw IoError("checkpoint: malformed Bdiag section in " + path.string());
  }
  SparseMatrix B(dim, 0.0);
  for (std::int64_t i = 0; i < dim; ++i) {
    double value = 0.0;
    if (!(in >> value)) {
      throw IoError("checkpoint: truncated Bdiag in " + path.string());
    }
    B.set(i, i, value);
  }
  std::size_t offdiag = 0;
  if (!(in >> key >> offdiag) || key != "Boffdiag") {
    throw IoError("checkpoint: malformed Boffdiag section in " +
                  path.string());
  }
  // Triplets come out of the writer row-major with ascending columns, i.e.
  // strictly lexicographically ascending (r, c); demand that order so a
  // corrupted file cannot silently overwrite an earlier entry.
  std::int64_t prev_r = -1, prev_c = -1;
  for (std::size_t k = 0; k < offdiag; ++k) {
    std::int64_t r = 0, c = 0;
    double value = 0.0;
    if (!(in >> r >> c >> value)) {
      throw IoError("checkpoint: truncated Boffdiag in " + path.string());
    }
    MEGH_REQUIRE(r >= 0 && r < dim && c >= 0 && c < dim,
                 "checkpoint: B index out of range");
    if (r == c) {
      throw IoError("checkpoint: diagonal entry (" + std::to_string(r) +
                    ", " + std::to_string(c) + ") in Boffdiag section in " +
                    path.string());
    }
    if (r < prev_r || (r == prev_r && c <= prev_c)) {
      throw IoError("checkpoint: duplicate or unsorted Boffdiag entry (" +
                    std::to_string(r) + ", " + std::to_string(c) + ") in " +
                    path.string());
    }
    prev_r = r;
    prev_c = c;
    B.set(r, c, value);
  }

  // Everything after the Boffdiag section must be either end-of-file or the
  // single trailing "policy" line save_megh_policy appends. Anything else is
  // a sign the counts above were corrupted (a short nnz silently drops
  // learned state) or the file was concatenated/damaged.
  std::string tail;
  if (in >> tail) {
    if (tail != "policy") {
      throw IoError("checkpoint: trailing data '" + tail +
                    "' after Boffdiag section in " + path.string());
    }
    std::string policy_rest;
    std::getline(in, policy_rest);
    if (in >> tail) {
      throw IoError("checkpoint: trailing data '" + tail +
                    "' after policy line in " + path.string());
    }
  }

  LspiLearner learner(dim, gamma, delta, max_update_support);
  learner.restore(std::move(B), std::move(z), std::move(theta));
  return learner;
}

void save_megh_policy(const MeghPolicy& policy,
                      const std::filesystem::path& path) {
  save_learner(policy.learner(), path);
  std::ofstream out(path, std::ios::app);
  if (!out) throw IoError("cannot append policy state: " + path.string());
  out << "policy " << strf("%.17g", policy.temperature()) << ' '
      << strf("%.17g", policy.cost_baseline()) << ' '
      << (policy.baseline_initialized() ? 1 : 0) << '\n';
}

void load_megh_policy(MeghPolicy& policy, const std::filesystem::path& path) {
  LspiLearner& learner = policy.mutable_learner();
  LspiLearner loaded = load_learner(path);
  MEGH_REQUIRE(loaded.dim() == learner.dim(),
               strf("checkpoint dimension %lld does not match policy %lld",
                    static_cast<long long>(loaded.dim()),
                    static_cast<long long>(learner.dim())));
  learner.restore(loaded.B(), loaded.z(), loaded.theta());

  // Trailing policy line.
  std::ifstream in(path);
  std::string line, policy_line;
  while (std::getline(in, line)) {
    if (starts_with(trim(line), "policy ")) policy_line = std::string(trim(line));
  }
  MEGH_REQUIRE(!policy_line.empty(),
               "checkpoint has no policy section: " + path.string());
  std::istringstream ps(policy_line);
  std::string key;
  double temp = 0.0, baseline = 0.0;
  int initialized = 0;
  if (!(ps >> key >> temp >> baseline >> initialized)) {
    throw IoError("checkpoint: malformed policy line in " + path.string());
  }
  policy.set_temperature(temp);
  policy.set_cost_baseline(baseline, initialized != 0);
}

}  // namespace megh
