// Learner checkpointing: persist and restore Megh's learned state so a
// scheduler can be warm-started after a restart or migrated between
// control-plane nodes — "learn as you go" without forgetting on redeploy.
//
// The format is a versioned plain-text file. Every loader parses the
// version out of the magic line and rejects a mismatched format with a
// ConfigError that names the version found and the loader to use, instead
// of tripping over the first structural difference downstream. All writers
// go through write_file_atomic (common/atomic_file.hpp): temp file, fsync,
// rename — a crash mid-save never destroys the previous checkpoint.
//
// v1 — one bare flat learner (save_learner):
//   megh-checkpoint v1
//   dim <d> gamma <g>
//   z <nnz> followed by "index value" lines
//   theta <nnz> ...
//   Bdiag <d> followed by d diagonal values
//   Boffdiag <nnz> followed by "row col value" triplets
//
// v3 — a whole MeghPolicy (save_megh_policy): the v1 learner body plus
//   policy <temp> <baseline> <initialized>
//   rng <mt19937_64 stream state>
// The rng line is what makes restore exact: a restored policy's Boltzmann
// draws continue the saved stream bit-for-bit, so a warm-started run is
// indistinguishable from one that never stopped (the property the serving
// daemon's crash recovery is built on; see src/serve). v1 policy files
// (pre-rng) are rejected loudly — load the learner alone with
// load_learner, or re-save with save_megh_policy.
//
// v4 — the hierarchical per-pod container (core/hierarchical_megh.hpp),
// superseding v2 by adding each pod's actor RNG stream:
//   megh-checkpoint v4
//   pods <P> hosts <M> vms <N>
//   policy <temp> <baseline> <initialized>
//   then per pod:
//     pod <p> begin <b> end <e> cap <c> next <n> gamma <g>
//     rng <mt19937_64 stream state>
//     slots <occupied> followed by "slot vm" lines (ascending slot)
//     z / theta as in v1 (pod-local indices)
//     Bdiag <live> default <d0> followed by "index value" lines — only
//       materialized rows are stored against the lazy default, because a
//       cluster-scale pod operator's dense diagonal would dwarf its
//       learned support
//     Boffdiag as in v1
//   end
// Plain text keeps the files diffable and the loader trivially fuzzable;
// Megh's state is small (Fig. 7: tens of thousands of nonzeros for an
// 800-PM week) and v4 stores only materialized rows, so compactness is
// not a concern at any scale.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "core/hierarchical_megh.hpp"
#include "core/lspi.hpp"
#include "core/megh_policy.hpp"

namespace megh {

/// Write the learner's full state (v1). Throws IoError on I/O failure.
void save_learner(const LspiLearner& learner,
                  const std::filesystem::path& path);

/// Restore a learner saved with save_learner (v1) or embedded in a policy
/// checkpoint (v3 — the policy/rng tail is ignored). The returned learner
/// resumes exactly (same B, z, θ and counters are reset to zero — counters
/// are diagnostics, not state). Throws IoError on parse failure and
/// ConfigError on version/shape mismatch.
LspiLearner load_learner(const std::filesystem::path& path,
                         double delta = 1.0, int max_update_support = 0);

/// Checkpoint a whole MeghPolicy (learner + temperature + advantage
/// baseline + actor RNG stream) as v3. The policy must have been begun
/// (it owns a learner).
void save_megh_policy(const MeghPolicy& policy,
                      const std::filesystem::path& path);

/// Restore into a MeghPolicy that has already been begun on a datacenter of
/// the same shape (N × M must match). Requires a v3 file; throws
/// ConfigError on a version or shape mismatch.
void load_megh_policy(MeghPolicy& policy, const std::filesystem::path& path);

/// Stream-level variants of save_megh_policy / load_megh_policy, shared
/// with the serving daemon's snapshot writer (which embeds the v3 policy
/// section inside its own state file). `context` names the source in
/// errors (a path, "<socket>", ...).
void write_megh_policy(std::ostream& out, const MeghPolicy& policy);
void read_megh_policy(std::istream& in, MeghPolicy& policy,
                      const std::string& context);

/// Checkpoint a hierarchical policy (v4): every pod's learner (with its
/// slot map and actor RNG stream) plus the shared temperature and
/// advantage baseline. The policy must have been begun.
void save_hierarchical_policy(const HierarchicalMeghPolicy& policy,
                              const std::filesystem::path& path);

/// Restore into a HierarchicalMeghPolicy begun on a fleet of the same
/// shape and shard plan (pod count and host ranges must match; per-pod
/// slot capacities come from the file). Requires a v4 file; throws
/// ConfigError on a version or shape mismatch. Per-pod retry queues and
/// rollback snapshots are reset — they are transient recovery state, not
/// learned state.
void load_hierarchical_policy(HierarchicalMeghPolicy& policy,
                              const std::filesystem::path& path);

/// Warm-start adapters: MeghPolicy/HierarchicalMeghPolicy variants whose
/// begin() loads a checkpoint right after the base begin(). The engine
/// calls begin() at the top of every Simulation::run — a plain policy
/// loaded before run() silently loses the restored state when begin()
/// rebuilds the learner. These adapters make `megh_sim --checkpoint-load`
/// (and any other run-a-restored-policy caller) correct by construction.
class WarmStartMeghPolicy : public MeghPolicy {
 public:
  WarmStartMeghPolicy(const MeghConfig& config,
                      std::filesystem::path checkpoint)
      : MeghPolicy(config), checkpoint_(std::move(checkpoint)) {}

  void begin(const Datacenter& dc, const CostConfig& cost,
             double interval_s) override {
    MeghPolicy::begin(dc, cost, interval_s);
    load_megh_policy(*this, checkpoint_);
  }

 private:
  std::filesystem::path checkpoint_;
};

class WarmStartHierarchicalMeghPolicy : public HierarchicalMeghPolicy {
 public:
  WarmStartHierarchicalMeghPolicy(const HierarchicalMeghConfig& config,
                                  std::filesystem::path checkpoint)
      : HierarchicalMeghPolicy(config), checkpoint_(std::move(checkpoint)) {}

  void begin(const Datacenter& dc, const CostConfig& cost,
             double interval_s) override {
    HierarchicalMeghPolicy::begin(dc, cost, interval_s);
    load_hierarchical_policy(*this, checkpoint_);
  }

 private:
  std::filesystem::path checkpoint_;
};

}  // namespace megh
