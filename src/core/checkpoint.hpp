// Learner checkpointing: persist and restore Megh's learned state so a
// scheduler can be warm-started after a restart or migrated between
// control-plane nodes — "learn as you go" without forgetting on redeploy.
//
// The format is a versioned plain-text file:
//   megh-checkpoint v1
//   dim <d> gamma <g>
//   temp <t>
//   baseline <b> <initialized>
//   z <nnz> followed by "index value" lines
//   theta <nnz> ...
//   B <diag-entries> <offdiag-nnz> followed by diag values then triplets
// Plain text keeps the files diffable and the loader trivially fuzzable;
// Megh's state is small (Fig. 7: tens of thousands of nonzeros for an
// 800-PM week), so compactness is not a concern.
#pragma once

#include <filesystem>

#include "core/lspi.hpp"

namespace megh {

class MeghPolicy;

/// Write the learner's full state. Throws IoError on I/O failure.
void save_learner(const LspiLearner& learner,
                  const std::filesystem::path& path);

/// Restore a learner saved with save_learner. The returned learner resumes
/// exactly (same B, z, θ and counters are reset to zero — counters are
/// diagnostics, not state). Throws IoError on parse failure and
/// ConfigError on version/shape mismatch.
LspiLearner load_learner(const std::filesystem::path& path,
                         double delta = 1.0, int max_update_support = 0);

/// Checkpoint a whole MeghPolicy (learner + temperature + advantage
/// baseline). The policy must have been begun (it owns a learner).
void save_megh_policy(const MeghPolicy& policy,
                      const std::filesystem::path& path);

/// Restore into a MeghPolicy that has already been begun on a datacenter of
/// the same shape (N × M must match). Throws ConfigError on mismatch.
void load_megh_policy(MeghPolicy& policy, const std::filesystem::path& path);

}  // namespace megh
