// Learner checkpointing: persist and restore Megh's learned state so a
// scheduler can be warm-started after a restart or migrated between
// control-plane nodes — "learn as you go" without forgetting on redeploy.
//
// The format is a versioned plain-text file. Both loaders parse the
// version out of the magic line and reject a mismatched format with a
// ConfigError that names the version found and the loader to use, instead
// of tripping over the first structural difference downstream.
//
// v1 — one flat learner:
//   megh-checkpoint v1
//   dim <d> gamma <g>
//   z <nnz> followed by "index value" lines
//   theta <nnz> ...
//   Bdiag <d> followed by d diagonal values
//   Boffdiag <nnz> followed by "row col value" triplets
//   policy <temp> <baseline> <initialized>   (save_megh_policy only)
//
// v2 — the hierarchical per-pod container (core/hierarchical_megh.hpp):
//   megh-checkpoint v2
//   pods <P> hosts <M> vms <N>
//   policy <temp> <baseline> <initialized>
//   then per pod:
//     pod <p> begin <b> end <e> cap <c> next <n> gamma <g>
//     slots <occupied> followed by "slot vm" lines (ascending slot)
//     z / theta as in v1 (pod-local indices)
//     Bdiag <live> default <d0> followed by "index value" lines — only
//       materialized rows are stored against the lazy default, because a
//       cluster-scale pod operator's dense diagonal would dwarf its
//       learned support
//     Boffdiag as in v1
//   end
// Plain text keeps the files diffable and the loader trivially fuzzable;
// Megh's state is small (Fig. 7: tens of thousands of nonzeros for an
// 800-PM week) and v2 stores only materialized rows, so compactness is
// not a concern at any scale.
#pragma once

#include <filesystem>

#include "core/lspi.hpp"

namespace megh {

class MeghPolicy;
class HierarchicalMeghPolicy;

/// Write the learner's full state. Throws IoError on I/O failure.
void save_learner(const LspiLearner& learner,
                  const std::filesystem::path& path);

/// Restore a learner saved with save_learner. The returned learner resumes
/// exactly (same B, z, θ and counters are reset to zero — counters are
/// diagnostics, not state). Throws IoError on parse failure and
/// ConfigError on version/shape mismatch.
LspiLearner load_learner(const std::filesystem::path& path,
                         double delta = 1.0, int max_update_support = 0);

/// Checkpoint a whole MeghPolicy (learner + temperature + advantage
/// baseline). The policy must have been begun (it owns a learner).
void save_megh_policy(const MeghPolicy& policy,
                      const std::filesystem::path& path);

/// Restore into a MeghPolicy that has already been begun on a datacenter of
/// the same shape (N × M must match). Throws ConfigError on mismatch.
void load_megh_policy(MeghPolicy& policy, const std::filesystem::path& path);

/// Checkpoint a hierarchical policy: every pod's learner (with its slot
/// map) plus the shared temperature and advantage baseline. The policy
/// must have been begun.
void save_hierarchical_policy(const HierarchicalMeghPolicy& policy,
                              const std::filesystem::path& path);

/// Restore into a HierarchicalMeghPolicy begun on a fleet of the same
/// shape and shard plan (pod count and host ranges must match; per-pod
/// slot capacities come from the file). Throws ConfigError on a version
/// or shape mismatch. Per-pod retry queues and rollback snapshots are
/// reset — they are transient recovery state, not learned state.
void load_hierarchical_policy(HierarchicalMeghPolicy& policy,
                              const std::filesystem::path& path);

}  // namespace megh
