// Megh's critic: least-squares policy iteration over the sparse action
// basis (Algorithm 1 of the paper).
//
// State per learner:
//   B = T⁻¹  — inverse transition operator, initialized to δ⁻¹·I (δ = d);
//   z        — discounted cost accumulator, z_{t+1} = z_t + φ_{a} C;
//   θ = B z  — the projection vector; V(s') = θᵀφ_a, i.e. Q(a) = θ[a].
//
// The transition update T_{t+1} = T_t + φ_a (φ_a − γ φ_b)ᵀ (Eq. 10) is
// applied to B directly through the Sherman–Morrison identity (Eq. 11).
// Because φ_a and φ_b are unit vectors, the update touches only column a and
// rows a/b of B, and θ is maintained incrementally through the same rank-1
// identity — never a dense d-vector refresh. This realizes the paper's
// O(#migrations) per-step cost claim (Sec. 5.2).
#pragma once

#include <cstdint>

#include "linalg/sparse_matrix.hpp"
#include "linalg/sparse_vector.hpp"

namespace megh {

class LspiLearner {
 public:
  /// `dim` = d = N × M. `delta` <= 0 selects the paper's δ = d
  /// initialization B₀ = (1/δ)·I. `max_update_support` > 0 truncates each
  /// Sherman–Morrison factor (u = B φ_a and w = (φ_a − γφ_b)ᵀ B) to its
  /// largest-magnitude entries before the rank-1 update, bounding B's
  /// fill-in so the per-step cost stays O(1) over long runs — the
  /// practical realization of the paper's sparse data structure
  /// (Sec. 5.2). 0 keeps the update exact (used by the algebra tests).
  LspiLearner(std::int64_t dim, double gamma, double delta = -1.0,
              int max_update_support = 0);

  /// One SARSA-style transition: action `a` was taken, cost `cost` was
  /// observed, and the policy's next action is `b` (φ_{π_t(s_{t+1})}).
  /// Updates B (Sherman–Morrison), z, and θ incrementally.
  void update(std::int64_t a, double cost, std::int64_t b);

  /// Q(a) = θ[a]: the estimated discounted cost-to-go of action a.
  double q_value(std::int64_t a) const { return theta_.get(a); }

  std::int64_t dim() const { return dim_; }
  double gamma() const { return gamma_; }

  /// Size of the learned model — the paper's "number of non-zero elements
  /// in the Q-table" (Fig. 7): nnz(θ) plus off-diagonal nnz of B.
  std::size_t qtable_nnz() const {
    return theta_.nnz() + B_.offdiag_nnz();
  }

  std::size_t theta_nnz() const { return theta_.nnz(); }
  const SparseVector& theta() const { return theta_; }
  const SparseMatrix& B() const { return B_; }
  const SparseVector& z() const { return z_; }

  /// Replace the learned state wholesale (checkpoint restore). Shapes must
  /// match dim(); counters are reset (they are diagnostics, not state).
  void restore(SparseMatrix b, SparseVector z, SparseVector theta);

  /// Number of update() calls (diagnostics/tests).
  long long updates() const { return updates_; }
  /// Updates skipped because the Sherman–Morrison denominator was singular.
  long long singular_skips() const { return singular_skips_; }
  /// Sherman–Morrison factors clipped to max_update_support entries.
  long long truncations() const { return truncations_; }

 private:
  void truncate_support(SparseVector& v, std::int64_t keep1,
                        std::int64_t keep2);

  std::int64_t dim_;
  double gamma_;
  int max_update_support_;
  SparseMatrix B_;
  SparseVector z_;
  SparseVector theta_;
  long long updates_ = 0;
  long long singular_skips_ = 0;
  long long truncations_ = 0;
};

}  // namespace megh
