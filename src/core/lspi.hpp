// Megh's critic: least-squares policy iteration over the sparse action
// basis (Algorithm 1 of the paper).
//
// State per learner:
//   B = T⁻¹  — inverse transition operator, initialized to δ⁻¹·I (δ = d);
//   z        — discounted cost accumulator, z_{t+1} = z_t + φ_{a} C;
//   θ = B z  — the projection vector; V(s') = θᵀφ_a, i.e. Q(a) = θ[a].
//
// The transition update T_{t+1} = T_t + φ_a (φ_a − γ φ_b)ᵀ (Eq. 10) is
// applied to B directly through the Sherman–Morrison identity (Eq. 11).
// Because φ_a and φ_b are unit vectors, the update touches only column a and
// rows a/b of B, and θ is maintained incrementally through the same rank-1
// identity — never a dense d-vector refresh. This realizes the paper's
// O(#migrations) per-step cost claim (Sec. 5.2).
//
// The update kernel is fused: the factors u = B e_a and
// w = (e_a − γ e_b)ᵀ B are extracted into flat sorted scratch buffers
// (reused across calls — zero steady-state allocation), the denominator,
// w·z, the θ axpy and the B rank-1 merge all run on those contiguous spans.
// `update_batch` additionally amortizes row b across a step's multi-action
// update: Megh closes every pending action against the same greedy b, so
// B.row(b) is extracted once and re-extracted only when a rank-1 update
// actually touched row b.
//
// Storage split: B's rows/columns have small bounded support (a handful of
// entries each, kept so by factor truncation), so they live in the flat
// sorted SparseMatrix. θ and z are the opposite shape — support grows with
// every distinct action ever touched and updates hit random indices — so
// they are addressed through a lazily-zeroed d-sized int32 slot map with
// compact payload slots and incremental nonzero counters: z += C e_a is
// one map lookup plus one store, the θ axpy is O(|u|), q_value is two
// dependent loads, and w·z streams w's sorted support against the slots.
// z[i] and θ[i] are interleaved in one 16-byte slot because every update
// touches both at the same action index — one cache line serves the pair.
// The kernel's few random loads (map entries of a and b, B's row headers)
// are software-prefetched up front so their miss latency overlaps. Sparse
// views are materialized on demand (checkpointing, tests) in O(support).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/huge_alloc.hpp"
#include "common/prefetch.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/sparse_vector.hpp"

namespace megh {

class Counter;
class Gauge;

class LspiLearner {
 public:
  /// `dim` = d = N × M. `delta` <= 0 selects the paper's δ = d
  /// initialization B₀ = (1/δ)·I. `max_update_support` > 0 truncates each
  /// Sherman–Morrison factor (u = B φ_a and w = (φ_a − γφ_b)ᵀ B) to its
  /// largest-magnitude entries before the rank-1 update, bounding B's
  /// fill-in so the per-step cost stays O(1) over long runs — the
  /// practical realization of the paper's sparse data structure
  /// (Sec. 5.2). 0 keeps the update exact (used by the algebra tests).
  LspiLearner(std::int64_t dim, double gamma, double delta = -1.0,
              int max_update_support = 0);

  /// One SARSA-style transition: action `a` was taken, cost `cost` was
  /// observed, and the policy's next action is `b` (φ_{π_t(s_{t+1})}).
  /// Updates B (Sherman–Morrison), z, and θ incrementally.
  void update(std::int64_t a, double cost, std::int64_t b);

  /// Apply one update per action against a shared next-action `b` and a
  /// shared per-action cost. Exactly equivalent to calling update() in a
  /// loop (same θ/B/z bit for bit, same counters), but B.row(b) is
  /// extracted once and reused until a rank-1 update touches row b.
  void update_batch(std::span<const std::int64_t> actions, double cost,
                    std::int64_t b);

  /// Q(a) = θ[a]: the estimated discounted cost-to-go of action a.
  double q_value(std::int64_t a) const {
    MEGH_ASSERT(a >= 0 && a < dim_, "q_value: action index out of range");
    const std::int32_t s = slot_of_[static_cast<std::size_t>(a)];
    return s != 0 ? slots_[static_cast<std::size_t>(s - 1)].theta : 0.0;
  }

  /// Batched Q lookup: out[k] = q_value(actions[k]). One gather kernel
  /// call, so the per-candidate slot-map misses overlap instead of
  /// serializing — the policy scores its whole candidate set this way.
  void q_values(std::span<const std::int64_t> actions,
                std::span<double> out) const;

  std::int64_t dim() const { return dim_; }
  double gamma() const { return gamma_; }

  /// Size of the learned model — the paper's "number of non-zero elements
  /// in the Q-table" (Fig. 7): nnz(θ) plus off-diagonal nnz of B.
  std::size_t qtable_nnz() const {
    return theta_nnz_ + B_.offdiag_nnz();
  }

  std::size_t theta_nnz() const { return theta_nnz_; }
  /// Sparse views of the dense-backed accumulators, materialized in
  /// ascending index order (checkpointing/tests — O(d), not a hot path).
  SparseVector theta() const;
  const SparseMatrix& B() const { return B_; }
  SparseVector z() const;

  /// Replace the learned state wholesale (checkpoint restore, burst
  /// rollback). Shapes must match dim(). The lifetime counters
  /// (updates/singular_skips/truncations) are preserved — they describe
  /// this learner's history, not the restored model — so stats() and the
  /// lspi.* telemetry stay monotone across rollback/resume.
  void restore(SparseMatrix b, SparseVector z, SparseVector theta);

  /// Number of update() calls (diagnostics/tests).
  long long updates() const { return updates_; }
  /// Updates skipped because the Sherman–Morrison denominator was singular.
  long long singular_skips() const { return singular_skips_; }
  /// Sherman–Morrison factors clipped to max_update_support entries.
  long long truncations() const { return truncations_; }

  /// Test hook: route every update through the general merge kernel even
  /// when the diagonal fast path applies. The equivalence property test
  /// drives a forced-general twin against a normal learner and compares
  /// the learned state bit for bit.
  void force_general_path_for_tests(bool force) { force_general_ = force; }

 private:
  void truncate_support(SparseVector& v, std::int64_t keep1,
                        std::int64_t keep2);

  /// The fused kernel body for a single transition. `row_b` must hold
  /// B.row(b); returns true when the applied rank-1 update touched row b
  /// (the caller must then refresh its cached row_b).
  bool update_fused(std::int64_t a, double cost, std::int64_t b,
                    const SparseVector& row_b);

  /// Steady-state body: row/col a is diagonal-only in B (diag_a, with
  /// |diag_a| >= tolerance) and row_b has at most one entry, so
  /// u = {a: diag_a} and w has at most two entries. Performs the same
  /// arithmetic as update_fused's general path in the same order —
  /// bit-identical by construction (enforced by the forced-general
  /// equivalence test) — without the scratch-vector merge machinery.
  bool update_fused_diagonal(std::int64_t a, double cost, std::int64_t b,
                             const SparseVector& row_b, double diag_a);

  /// One accumulator slot: z[i] and θ[i] share a cache line because the
  /// update kernel touches both at the same action index.
  struct Slot {
    double z = 0.0;
    double theta = 0.0;
  };
  // The SIMD slot kernels address this as interleaved doubles: z at
  // slots[2s], θ at slots[2s + 1].
  static_assert(sizeof(Slot) == 2 * sizeof(double),
                "Slot must stay two packed doubles for the gather kernels");

  /// Materialize-on-write slot lookup. May grow the compact slot array —
  /// callers must not hold slot references across a touch of a different
  /// index.
  Slot& slot(std::int64_t i) {
    std::int32_t& s = slot_of_[static_cast<std::size_t>(i)];
    if (s == 0) {
      slots_.emplace_back();
      index_of_slot_.push_back(i);
      s = static_cast<std::int32_t>(slots_.size());
    }
    return slots_[static_cast<std::size_t>(s - 1)];
  }

  /// Read-side view: a virgin slot reads as zero without materializing.
  double slot_z(std::int64_t i) const {
    const std::int32_t s = slot_of_[static_cast<std::size_t>(i)];
    return s != 0 ? slots_[static_cast<std::size_t>(s - 1)].z : 0.0;
  }

  /// Second pipeline stage (see SparseMatrix::prefetch_row_payload): once
  /// i's map entry has arrived, start the z/θ slot load behind it.
  void prefetch_slot_payload(std::int64_t i) const {
    const std::int32_t s = slot_of_[static_cast<std::size_t>(i)];
    if (s != 0) MEGH_PREFETCH(&slots_[static_cast<std::size_t>(s - 1)]);
  }

  /// slot += v with pruning to exact zero below tolerance and incremental
  /// nnz maintenance — the dense twin of SparseVector::add.
  static void slot_add(double& slot, std::size_t& nnz, double v);

  /// θ += coef · sparse, entrywise via slot_add (order-independent).
  void theta_axpy(double coef, const SparseVector& sparse);

  std::int64_t dim_;
  double gamma_;
  int max_update_support_;
  // True when the diagonal fast path may run: factors of support 1 and 2
  // must be exempt from truncation (and its counter), which holds for
  // max_update_support 0 (exact) or >= 2.
  bool fast_path_ok_;
  bool force_general_ = false;
  // Cached telemetry handles (registered at construction; the registry
  // never destroys them) — spares the hot path the function-local-static
  // guard loads.
  Counter* rank1_counter_;
  Counter* singular_counter_;
  Counter* truncation_counter_;
  Gauge* fill_gauge_;
  SparseMatrix B_;
  // Interleaved z/θ accumulators with exact-zero pruning; *_nnz_ counts
  // entries with magnitude >= SparseVector::kZeroTolerance. Stored like
  // B's rows: the only d-sized structure is a lazily-zeroed int32 slot map
  // (huge-page backed, 0 = virgin), and materialized slots pack densely in
  // touch order. Creating the d-slot accumulator is O(1) and the live
  // slots fit in cache while the untouched map reads off the kernel's
  // shared zero page.
  ZeroLazyBuffer<std::int32_t> slot_of_;
  // Huge-page backed: the slot array outgrows L2 on long runs and the
  // kernel's accesses into it are random, so 4 KiB pages would add a
  // nested page walk to every slot load (and drop the software
  // prefetches whose translation misses — see huge_alloc.hpp).
  std::vector<Slot, HugePageAllocator<Slot>> slots_;  // compact, touch order
  std::vector<std::int64_t> index_of_slot_;  // slot → action index
  std::size_t z_nnz_ = 0;
  std::size_t theta_nnz_ = 0;
  long long updates_ = 0;
  long long singular_skips_ = 0;
  long long truncations_ = 0;

  // Fused-kernel scratch (reused across updates; never observable state).
  SparseVector u_scratch_;
  SparseVector w_scratch_;
  SparseVector row_b_scratch_;
  std::vector<std::pair<std::int64_t, double>> trunc_scratch_;
};

}  // namespace megh
