#include "core/boltzmann.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace megh {

BoltzmannSelector::BoltzmannSelector(double temp0, double epsilon)
    : temp_(temp0), epsilon_(epsilon) {
  MEGH_REQUIRE(temp0 > 0.0, "Boltzmann Temp0 must be positive");
  MEGH_REQUIRE(epsilon >= 0.0, "Boltzmann epsilon must be non-negative");
}

std::vector<double> BoltzmannSelector::weights(
    std::span<const double> q_values) const {
  MEGH_ASSERT(!q_values.empty(), "Boltzmann weights need at least one action");
  const double min_q = *std::min_element(q_values.begin(), q_values.end());
  std::vector<double> w;
  w.reserve(q_values.size());
  // Guard against a fully-decayed temperature: exp argument is <= 0, so
  // weights lie in [0, 1]; a tiny temp simply drives non-minimal weights
  // to 0 (greedy behaviour), which is the intended limit.
  const double temp = std::max(temp_, 1e-12);
  for (double q : q_values) {
    w.push_back(std::exp(-(q - min_q) / temp));
  }
  return w;
}

std::size_t BoltzmannSelector::sample(std::span<const double> q_values,
                                      Rng& rng) const {
  const std::vector<double> w = weights(q_values);
  double total = 0.0;
  for (double x : w) total += x;
  if (!(total > 0.0) || !std::isfinite(total)) return greedy(q_values);
  return rng.weighted_index(w);
}

std::size_t BoltzmannSelector::greedy(std::span<const double> q_values) {
  MEGH_ASSERT(!q_values.empty(), "greedy selection needs at least one action");
  return static_cast<std::size_t>(
      std::min_element(q_values.begin(), q_values.end()) - q_values.begin());
}

void BoltzmannSelector::decay() { temp_ *= std::exp(-epsilon_); }

}  // namespace megh
