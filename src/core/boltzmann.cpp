#include "core/boltzmann.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "linalg/simd/simd.hpp"

namespace megh {

BoltzmannSelector::BoltzmannSelector(double temp0, double epsilon)
    : temp_(temp0), epsilon_(epsilon) {
  MEGH_REQUIRE(temp0 > 0.0, "Boltzmann Temp0 must be positive");
  MEGH_REQUIRE(epsilon >= 0.0, "Boltzmann epsilon must be non-negative");
}

std::vector<double> BoltzmannSelector::weights(
    std::span<const double> q_values) const {
  std::vector<double> w;
  weights(q_values, w);
  return w;
}

void BoltzmannSelector::weights(std::span<const double> q_values,
                                std::vector<double>& out) const {
  MEGH_ASSERT(!q_values.empty(), "Boltzmann weights need at least one action");
  // Non-finite Q-values (a diverged critic, an uninitialized slot) get
  // weight 0 — unselectable — instead of poisoning every weight with NaN:
  // exp(-(NaN - min)) or a NaN min_q would otherwise spread through the
  // whole draw. The min is therefore taken over finite entries only.
  const simd::Ops& ops = simd::ops();
  const double min_q = ops.min_finite(q_values.data(), q_values.size());
  if (!std::isfinite(min_q)) {  // no finite Q at all
    out.assign(q_values.size(), 0.0);
    return;
  }
  // Guard against a fully-decayed temperature: exp argument is <= 0, so
  // weights lie in [0, 1]; a tiny temp simply drives non-minimal weights
  // to 0 (greedy behaviour), which is the intended limit.
  const double temp = std::max(temp_, 1e-12);
  out.resize(q_values.size());
  ops.exp_weights(q_values.data(), q_values.size(), min_q, temp, out.data());
}

std::size_t BoltzmannSelector::sample(std::span<const double> q_values,
                                      Rng& rng) const {
  const std::vector<double> w = weights(q_values);
  double total = 0.0;
  for (double x : w) total += x;
  if (!(total > 0.0) || !std::isfinite(total)) return greedy(q_values);
  return rng.weighted_index(w);
}

std::size_t BoltzmannSelector::greedy(std::span<const double> q_values) {
  MEGH_ASSERT(!q_values.empty(), "greedy selection needs at least one action");
  // Minimum over finite entries only: min_element's comparator is not a
  // strict weak ordering in the presence of NaN. Index 0 if none is finite.
  std::size_t best = 0;
  bool found = false;
  for (std::size_t i = 0; i < q_values.size(); ++i) {
    if (!std::isfinite(q_values[i])) continue;
    if (!found || q_values[i] < q_values[best]) {
      best = i;
      found = true;
    }
  }
  return best;
}

void BoltzmannSelector::decay() { temp_ *= std::exp(-epsilon_); }

}  // namespace megh
