file(REMOVE_RECURSE
  "CMakeFiles/megh_sim_cli.dir/megh_sim.cpp.o"
  "CMakeFiles/megh_sim_cli.dir/megh_sim.cpp.o.d"
  "megh_sim"
  "megh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
