# Empty compiler generated dependencies file for megh_sim_cli.
# This may be replaced when dependencies are built.
