# Empty dependencies file for megh_common.
# This may be replaced when dependencies are built.
