file(REMOVE_RECURSE
  "CMakeFiles/megh_common.dir/args.cpp.o"
  "CMakeFiles/megh_common.dir/args.cpp.o.d"
  "CMakeFiles/megh_common.dir/csv.cpp.o"
  "CMakeFiles/megh_common.dir/csv.cpp.o.d"
  "CMakeFiles/megh_common.dir/error.cpp.o"
  "CMakeFiles/megh_common.dir/error.cpp.o.d"
  "CMakeFiles/megh_common.dir/log.cpp.o"
  "CMakeFiles/megh_common.dir/log.cpp.o.d"
  "CMakeFiles/megh_common.dir/rng.cpp.o"
  "CMakeFiles/megh_common.dir/rng.cpp.o.d"
  "CMakeFiles/megh_common.dir/string_util.cpp.o"
  "CMakeFiles/megh_common.dir/string_util.cpp.o.d"
  "libmegh_common.a"
  "libmegh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
