file(REMOVE_RECURSE
  "libmegh_common.a"
)
