# Empty dependencies file for megh_core.
# This may be replaced when dependencies are built.
