
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/boltzmann.cpp" "src/core/CMakeFiles/megh_core.dir/boltzmann.cpp.o" "gcc" "src/core/CMakeFiles/megh_core.dir/boltzmann.cpp.o.d"
  "/root/repo/src/core/candidates.cpp" "src/core/CMakeFiles/megh_core.dir/candidates.cpp.o" "gcc" "src/core/CMakeFiles/megh_core.dir/candidates.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/megh_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/megh_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/lspi.cpp" "src/core/CMakeFiles/megh_core.dir/lspi.cpp.o" "gcc" "src/core/CMakeFiles/megh_core.dir/lspi.cpp.o.d"
  "/root/repo/src/core/megh_policy.cpp" "src/core/CMakeFiles/megh_core.dir/megh_policy.cpp.o" "gcc" "src/core/CMakeFiles/megh_core.dir/megh_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/megh_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/megh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
