file(REMOVE_RECURSE
  "libmegh_core.a"
)
