file(REMOVE_RECURSE
  "CMakeFiles/megh_core.dir/boltzmann.cpp.o"
  "CMakeFiles/megh_core.dir/boltzmann.cpp.o.d"
  "CMakeFiles/megh_core.dir/candidates.cpp.o"
  "CMakeFiles/megh_core.dir/candidates.cpp.o.d"
  "CMakeFiles/megh_core.dir/checkpoint.cpp.o"
  "CMakeFiles/megh_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/megh_core.dir/lspi.cpp.o"
  "CMakeFiles/megh_core.dir/lspi.cpp.o.d"
  "CMakeFiles/megh_core.dir/megh_policy.cpp.o"
  "CMakeFiles/megh_core.dir/megh_policy.cpp.o.d"
  "libmegh_core.a"
  "libmegh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
