file(REMOVE_RECURSE
  "libmegh_linalg.a"
)
