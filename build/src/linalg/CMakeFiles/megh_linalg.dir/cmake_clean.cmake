file(REMOVE_RECURSE
  "CMakeFiles/megh_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/megh_linalg.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/megh_linalg.dir/sherman_morrison.cpp.o"
  "CMakeFiles/megh_linalg.dir/sherman_morrison.cpp.o.d"
  "CMakeFiles/megh_linalg.dir/sparse_matrix.cpp.o"
  "CMakeFiles/megh_linalg.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/megh_linalg.dir/sparse_vector.cpp.o"
  "CMakeFiles/megh_linalg.dir/sparse_vector.cpp.o.d"
  "libmegh_linalg.a"
  "libmegh_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
