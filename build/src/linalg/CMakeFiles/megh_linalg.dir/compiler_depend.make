# Empty compiler generated dependencies file for megh_linalg.
# This may be replaced when dependencies are built.
