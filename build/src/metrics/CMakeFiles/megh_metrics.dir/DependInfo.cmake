
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/convergence.cpp" "src/metrics/CMakeFiles/megh_metrics.dir/convergence.cpp.o" "gcc" "src/metrics/CMakeFiles/megh_metrics.dir/convergence.cpp.o.d"
  "/root/repo/src/metrics/cullen_frey.cpp" "src/metrics/CMakeFiles/megh_metrics.dir/cullen_frey.cpp.o" "gcc" "src/metrics/CMakeFiles/megh_metrics.dir/cullen_frey.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/metrics/CMakeFiles/megh_metrics.dir/histogram.cpp.o" "gcc" "src/metrics/CMakeFiles/megh_metrics.dir/histogram.cpp.o.d"
  "/root/repo/src/metrics/percentile.cpp" "src/metrics/CMakeFiles/megh_metrics.dir/percentile.cpp.o" "gcc" "src/metrics/CMakeFiles/megh_metrics.dir/percentile.cpp.o.d"
  "/root/repo/src/metrics/running_stats.cpp" "src/metrics/CMakeFiles/megh_metrics.dir/running_stats.cpp.o" "gcc" "src/metrics/CMakeFiles/megh_metrics.dir/running_stats.cpp.o.d"
  "/root/repo/src/metrics/timeseries.cpp" "src/metrics/CMakeFiles/megh_metrics.dir/timeseries.cpp.o" "gcc" "src/metrics/CMakeFiles/megh_metrics.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
