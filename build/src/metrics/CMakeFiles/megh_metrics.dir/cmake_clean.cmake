file(REMOVE_RECURSE
  "CMakeFiles/megh_metrics.dir/convergence.cpp.o"
  "CMakeFiles/megh_metrics.dir/convergence.cpp.o.d"
  "CMakeFiles/megh_metrics.dir/cullen_frey.cpp.o"
  "CMakeFiles/megh_metrics.dir/cullen_frey.cpp.o.d"
  "CMakeFiles/megh_metrics.dir/histogram.cpp.o"
  "CMakeFiles/megh_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/megh_metrics.dir/percentile.cpp.o"
  "CMakeFiles/megh_metrics.dir/percentile.cpp.o.d"
  "CMakeFiles/megh_metrics.dir/running_stats.cpp.o"
  "CMakeFiles/megh_metrics.dir/running_stats.cpp.o.d"
  "CMakeFiles/megh_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/megh_metrics.dir/timeseries.cpp.o.d"
  "libmegh_metrics.a"
  "libmegh_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
