file(REMOVE_RECURSE
  "libmegh_metrics.a"
)
