# Empty dependencies file for megh_metrics.
# This may be replaced when dependencies are built.
