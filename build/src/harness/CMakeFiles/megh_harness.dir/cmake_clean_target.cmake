file(REMOVE_RECURSE
  "libmegh_harness.a"
)
