# Empty compiler generated dependencies file for megh_harness.
# This may be replaced when dependencies are built.
