file(REMOVE_RECURSE
  "CMakeFiles/megh_harness.dir/experiment.cpp.o"
  "CMakeFiles/megh_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/megh_harness.dir/parallel.cpp.o"
  "CMakeFiles/megh_harness.dir/parallel.cpp.o.d"
  "CMakeFiles/megh_harness.dir/report.cpp.o"
  "CMakeFiles/megh_harness.dir/report.cpp.o.d"
  "CMakeFiles/megh_harness.dir/scenario.cpp.o"
  "CMakeFiles/megh_harness.dir/scenario.cpp.o.d"
  "libmegh_harness.a"
  "libmegh_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
