file(REMOVE_RECURSE
  "CMakeFiles/megh_trace.dir/csv_trace.cpp.o"
  "CMakeFiles/megh_trace.dir/csv_trace.cpp.o.d"
  "CMakeFiles/megh_trace.dir/google_synth.cpp.o"
  "CMakeFiles/megh_trace.dir/google_synth.cpp.o.d"
  "CMakeFiles/megh_trace.dir/planetlab_synth.cpp.o"
  "CMakeFiles/megh_trace.dir/planetlab_synth.cpp.o.d"
  "CMakeFiles/megh_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/megh_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/megh_trace.dir/trace_table.cpp.o"
  "CMakeFiles/megh_trace.dir/trace_table.cpp.o.d"
  "libmegh_trace.a"
  "libmegh_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
