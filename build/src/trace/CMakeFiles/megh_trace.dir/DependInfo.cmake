
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv_trace.cpp" "src/trace/CMakeFiles/megh_trace.dir/csv_trace.cpp.o" "gcc" "src/trace/CMakeFiles/megh_trace.dir/csv_trace.cpp.o.d"
  "/root/repo/src/trace/google_synth.cpp" "src/trace/CMakeFiles/megh_trace.dir/google_synth.cpp.o" "gcc" "src/trace/CMakeFiles/megh_trace.dir/google_synth.cpp.o.d"
  "/root/repo/src/trace/planetlab_synth.cpp" "src/trace/CMakeFiles/megh_trace.dir/planetlab_synth.cpp.o" "gcc" "src/trace/CMakeFiles/megh_trace.dir/planetlab_synth.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/megh_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/megh_trace.dir/trace_stats.cpp.o.d"
  "/root/repo/src/trace/trace_table.cpp" "src/trace/CMakeFiles/megh_trace.dir/trace_table.cpp.o" "gcc" "src/trace/CMakeFiles/megh_trace.dir/trace_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
