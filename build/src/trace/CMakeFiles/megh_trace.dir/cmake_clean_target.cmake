file(REMOVE_RECURSE
  "libmegh_trace.a"
)
