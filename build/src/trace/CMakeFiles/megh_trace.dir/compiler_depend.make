# Empty compiler generated dependencies file for megh_trace.
# This may be replaced when dependencies are built.
