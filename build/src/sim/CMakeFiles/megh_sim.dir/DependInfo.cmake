
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/megh_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/datacenter.cpp" "src/sim/CMakeFiles/megh_sim.dir/datacenter.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/datacenter.cpp.o.d"
  "/root/repo/src/sim/host_spec.cpp" "src/sim/CMakeFiles/megh_sim.dir/host_spec.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/host_spec.cpp.o.d"
  "/root/repo/src/sim/migration_model.cpp" "src/sim/CMakeFiles/megh_sim.dir/migration_model.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/migration_model.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/megh_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/placement.cpp" "src/sim/CMakeFiles/megh_sim.dir/placement.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/placement.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/sim/CMakeFiles/megh_sim.dir/power_model.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/power_model.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/sim/CMakeFiles/megh_sim.dir/simulation.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/sim/sla.cpp" "src/sim/CMakeFiles/megh_sim.dir/sla.cpp.o" "gcc" "src/sim/CMakeFiles/megh_sim.dir/sla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/megh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
