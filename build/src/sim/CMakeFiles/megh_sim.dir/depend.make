# Empty dependencies file for megh_sim.
# This may be replaced when dependencies are built.
