file(REMOVE_RECURSE
  "CMakeFiles/megh_sim.dir/cost_model.cpp.o"
  "CMakeFiles/megh_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/megh_sim.dir/datacenter.cpp.o"
  "CMakeFiles/megh_sim.dir/datacenter.cpp.o.d"
  "CMakeFiles/megh_sim.dir/host_spec.cpp.o"
  "CMakeFiles/megh_sim.dir/host_spec.cpp.o.d"
  "CMakeFiles/megh_sim.dir/migration_model.cpp.o"
  "CMakeFiles/megh_sim.dir/migration_model.cpp.o.d"
  "CMakeFiles/megh_sim.dir/network.cpp.o"
  "CMakeFiles/megh_sim.dir/network.cpp.o.d"
  "CMakeFiles/megh_sim.dir/placement.cpp.o"
  "CMakeFiles/megh_sim.dir/placement.cpp.o.d"
  "CMakeFiles/megh_sim.dir/power_model.cpp.o"
  "CMakeFiles/megh_sim.dir/power_model.cpp.o.d"
  "CMakeFiles/megh_sim.dir/simulation.cpp.o"
  "CMakeFiles/megh_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/megh_sim.dir/sla.cpp.o"
  "CMakeFiles/megh_sim.dir/sla.cpp.o.d"
  "libmegh_sim.a"
  "libmegh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
