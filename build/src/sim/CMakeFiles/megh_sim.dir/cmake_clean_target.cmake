file(REMOVE_RECURSE
  "libmegh_sim.a"
)
