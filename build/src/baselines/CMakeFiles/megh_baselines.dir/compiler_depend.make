# Empty compiler generated dependencies file for megh_baselines.
# This may be replaced when dependencies are built.
