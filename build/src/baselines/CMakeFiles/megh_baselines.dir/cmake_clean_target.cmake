file(REMOVE_RECURSE
  "libmegh_baselines.a"
)
