
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/detectors.cpp" "src/baselines/CMakeFiles/megh_baselines.dir/detectors.cpp.o" "gcc" "src/baselines/CMakeFiles/megh_baselines.dir/detectors.cpp.o.d"
  "/root/repo/src/baselines/madvm.cpp" "src/baselines/CMakeFiles/megh_baselines.dir/madvm.cpp.o" "gcc" "src/baselines/CMakeFiles/megh_baselines.dir/madvm.cpp.o.d"
  "/root/repo/src/baselines/mmt_policy.cpp" "src/baselines/CMakeFiles/megh_baselines.dir/mmt_policy.cpp.o" "gcc" "src/baselines/CMakeFiles/megh_baselines.dir/mmt_policy.cpp.o.d"
  "/root/repo/src/baselines/qlearning.cpp" "src/baselines/CMakeFiles/megh_baselines.dir/qlearning.cpp.o" "gcc" "src/baselines/CMakeFiles/megh_baselines.dir/qlearning.cpp.o.d"
  "/root/repo/src/baselines/sandpiper.cpp" "src/baselines/CMakeFiles/megh_baselines.dir/sandpiper.cpp.o" "gcc" "src/baselines/CMakeFiles/megh_baselines.dir/sandpiper.cpp.o.d"
  "/root/repo/src/baselines/simple_policies.cpp" "src/baselines/CMakeFiles/megh_baselines.dir/simple_policies.cpp.o" "gcc" "src/baselines/CMakeFiles/megh_baselines.dir/simple_policies.cpp.o.d"
  "/root/repo/src/baselines/vm_selection.cpp" "src/baselines/CMakeFiles/megh_baselines.dir/vm_selection.cpp.o" "gcc" "src/baselines/CMakeFiles/megh_baselines.dir/vm_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/megh_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
