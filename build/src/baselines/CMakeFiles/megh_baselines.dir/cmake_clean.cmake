file(REMOVE_RECURSE
  "CMakeFiles/megh_baselines.dir/detectors.cpp.o"
  "CMakeFiles/megh_baselines.dir/detectors.cpp.o.d"
  "CMakeFiles/megh_baselines.dir/madvm.cpp.o"
  "CMakeFiles/megh_baselines.dir/madvm.cpp.o.d"
  "CMakeFiles/megh_baselines.dir/mmt_policy.cpp.o"
  "CMakeFiles/megh_baselines.dir/mmt_policy.cpp.o.d"
  "CMakeFiles/megh_baselines.dir/qlearning.cpp.o"
  "CMakeFiles/megh_baselines.dir/qlearning.cpp.o.d"
  "CMakeFiles/megh_baselines.dir/sandpiper.cpp.o"
  "CMakeFiles/megh_baselines.dir/sandpiper.cpp.o.d"
  "CMakeFiles/megh_baselines.dir/simple_policies.cpp.o"
  "CMakeFiles/megh_baselines.dir/simple_policies.cpp.o.d"
  "CMakeFiles/megh_baselines.dir/vm_selection.cpp.o"
  "CMakeFiles/megh_baselines.dir/vm_selection.cpp.o.d"
  "libmegh_baselines.a"
  "libmegh_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megh_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
