file(REMOVE_RECURSE
  "CMakeFiles/trace_test.dir/trace/test_csv_trace.cpp.o"
  "CMakeFiles/trace_test.dir/trace/test_csv_trace.cpp.o.d"
  "CMakeFiles/trace_test.dir/trace/test_google_synth.cpp.o"
  "CMakeFiles/trace_test.dir/trace/test_google_synth.cpp.o.d"
  "CMakeFiles/trace_test.dir/trace/test_planetlab_synth.cpp.o"
  "CMakeFiles/trace_test.dir/trace/test_planetlab_synth.cpp.o.d"
  "CMakeFiles/trace_test.dir/trace/test_trace_stats.cpp.o"
  "CMakeFiles/trace_test.dir/trace/test_trace_stats.cpp.o.d"
  "CMakeFiles/trace_test.dir/trace/test_trace_table.cpp.o"
  "CMakeFiles/trace_test.dir/trace/test_trace_table.cpp.o.d"
  "trace_test"
  "trace_test.pdb"
  "trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
