
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/test_dense_matrix.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/test_dense_matrix.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/test_dense_matrix.cpp.o.d"
  "/root/repo/tests/linalg/test_sherman_morrison.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/test_sherman_morrison.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/test_sherman_morrison.cpp.o.d"
  "/root/repo/tests/linalg/test_sparse_matrix.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/test_sparse_matrix.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/test_sparse_matrix.cpp.o.d"
  "/root/repo/tests/linalg/test_sparse_vector.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/test_sparse_vector.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/test_sparse_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/megh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/megh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/megh_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/megh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/megh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
