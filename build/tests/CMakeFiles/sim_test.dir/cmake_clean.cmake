file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/test_cost_model.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_cost_model.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_datacenter.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_datacenter.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_host_spec.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_host_spec.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_migration_model.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_migration_model.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_network.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_network.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_placement.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_placement.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_power_model.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_power_model.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_simulation.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_simulation.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_sla.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_sla.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/test_slav_metrics.cpp.o"
  "CMakeFiles/sim_test.dir/sim/test_slav_metrics.cpp.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
