
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_cost_model.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_cost_model.cpp.o.d"
  "/root/repo/tests/sim/test_datacenter.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_datacenter.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_datacenter.cpp.o.d"
  "/root/repo/tests/sim/test_host_spec.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_host_spec.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_host_spec.cpp.o.d"
  "/root/repo/tests/sim/test_migration_model.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_migration_model.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_migration_model.cpp.o.d"
  "/root/repo/tests/sim/test_network.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_network.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_network.cpp.o.d"
  "/root/repo/tests/sim/test_placement.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_placement.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_placement.cpp.o.d"
  "/root/repo/tests/sim/test_power_model.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_power_model.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_power_model.cpp.o.d"
  "/root/repo/tests/sim/test_simulation.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_simulation.cpp.o.d"
  "/root/repo/tests/sim/test_sla.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_sla.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_sla.cpp.o.d"
  "/root/repo/tests/sim/test_slav_metrics.cpp" "tests/CMakeFiles/sim_test.dir/sim/test_slav_metrics.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/test_slav_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/megh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/megh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/megh_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/megh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/megh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
