
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/test_detectors.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/test_detectors.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/test_detectors.cpp.o.d"
  "/root/repo/tests/baselines/test_madvm.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/test_madvm.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/test_madvm.cpp.o.d"
  "/root/repo/tests/baselines/test_mmt_policy.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/test_mmt_policy.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/test_mmt_policy.cpp.o.d"
  "/root/repo/tests/baselines/test_qlearning.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/test_qlearning.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/test_qlearning.cpp.o.d"
  "/root/repo/tests/baselines/test_sandpiper.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/test_sandpiper.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/test_sandpiper.cpp.o.d"
  "/root/repo/tests/baselines/test_simple_policies.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/test_simple_policies.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/test_simple_policies.cpp.o.d"
  "/root/repo/tests/baselines/test_vm_selection.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/test_vm_selection.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/test_vm_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/megh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/megh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/megh_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/megh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/megh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
