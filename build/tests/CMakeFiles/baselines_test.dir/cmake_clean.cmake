file(REMOVE_RECURSE
  "CMakeFiles/baselines_test.dir/baselines/test_detectors.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/test_detectors.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/test_madvm.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/test_madvm.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/test_mmt_policy.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/test_mmt_policy.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/test_qlearning.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/test_qlearning.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/test_sandpiper.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/test_sandpiper.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/test_simple_policies.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/test_simple_policies.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/test_vm_selection.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/test_vm_selection.cpp.o.d"
  "baselines_test"
  "baselines_test.pdb"
  "baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
