
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_args.cpp" "tests/CMakeFiles/common_test.dir/common/test_args.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/test_args.cpp.o.d"
  "/root/repo/tests/common/test_csv.cpp" "tests/CMakeFiles/common_test.dir/common/test_csv.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/test_csv.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/common_test.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_string_util.cpp" "tests/CMakeFiles/common_test.dir/common/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/test_string_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/megh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/megh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/megh_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/megh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/megh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
