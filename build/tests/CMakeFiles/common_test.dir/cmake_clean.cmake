file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/common/test_args.cpp.o"
  "CMakeFiles/common_test.dir/common/test_args.cpp.o.d"
  "CMakeFiles/common_test.dir/common/test_csv.cpp.o"
  "CMakeFiles/common_test.dir/common/test_csv.cpp.o.d"
  "CMakeFiles/common_test.dir/common/test_rng.cpp.o"
  "CMakeFiles/common_test.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/common_test.dir/common/test_string_util.cpp.o"
  "CMakeFiles/common_test.dir/common/test_string_util.cpp.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
