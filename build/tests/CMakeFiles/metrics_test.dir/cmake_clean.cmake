file(REMOVE_RECURSE
  "CMakeFiles/metrics_test.dir/metrics/test_boxplot.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/test_boxplot.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/test_convergence.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/test_convergence.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/test_cullen_frey.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/test_cullen_frey.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/test_histogram.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/test_histogram.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/test_percentile.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/test_percentile.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/test_running_stats.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/test_running_stats.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/test_timeseries.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/test_timeseries.cpp.o.d"
  "metrics_test"
  "metrics_test.pdb"
  "metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
