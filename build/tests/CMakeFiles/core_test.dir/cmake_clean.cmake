file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/test_basis.cpp.o"
  "CMakeFiles/core_test.dir/core/test_basis.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_boltzmann.cpp.o"
  "CMakeFiles/core_test.dir/core/test_boltzmann.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_candidates.cpp.o"
  "CMakeFiles/core_test.dir/core/test_candidates.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_checkpoint.cpp.o"
  "CMakeFiles/core_test.dir/core/test_checkpoint.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_lspi.cpp.o"
  "CMakeFiles/core_test.dir/core/test_lspi.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_megh_policy.cpp.o"
  "CMakeFiles/core_test.dir/core/test_megh_policy.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
