file(REMOVE_RECURSE
  "CMakeFiles/planetlab_consolidation.dir/planetlab_consolidation.cpp.o"
  "CMakeFiles/planetlab_consolidation.dir/planetlab_consolidation.cpp.o.d"
  "planetlab_consolidation"
  "planetlab_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planetlab_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
