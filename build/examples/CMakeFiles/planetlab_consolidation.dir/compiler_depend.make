# Empty compiler generated dependencies file for planetlab_consolidation.
# This may be replaced when dependencies are built.
