file(REMOVE_RECURSE
  "CMakeFiles/google_tasks.dir/google_tasks.cpp.o"
  "CMakeFiles/google_tasks.dir/google_tasks.cpp.o.d"
  "google_tasks"
  "google_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/google_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
