# Empty dependencies file for google_tasks.
# This may be replaced when dependencies are built.
