# Empty dependencies file for fat_tree_network.
# This may be replaced when dependencies are built.
