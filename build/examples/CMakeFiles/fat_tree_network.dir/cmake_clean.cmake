file(REMOVE_RECURSE
  "CMakeFiles/fat_tree_network.dir/fat_tree_network.cpp.o"
  "CMakeFiles/fat_tree_network.dir/fat_tree_network.cpp.o.d"
  "fat_tree_network"
  "fat_tree_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fat_tree_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
