file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_megh_vs_madvm_planetlab.dir/bench_fig4_megh_vs_madvm_planetlab.cpp.o"
  "CMakeFiles/bench_fig4_megh_vs_madvm_planetlab.dir/bench_fig4_megh_vs_madvm_planetlab.cpp.o.d"
  "bench_fig4_megh_vs_madvm_planetlab"
  "bench_fig4_megh_vs_madvm_planetlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_megh_vs_madvm_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
