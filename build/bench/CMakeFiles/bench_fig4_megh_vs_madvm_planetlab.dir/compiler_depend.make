# Empty compiler generated dependencies file for bench_fig4_megh_vs_madvm_planetlab.
# This may be replaced when dependencies are built.
