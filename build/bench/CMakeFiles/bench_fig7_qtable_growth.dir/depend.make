# Empty dependencies file for bench_fig7_qtable_growth.
# This may be replaced when dependencies are built.
