file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_qtable_growth.dir/bench_fig7_qtable_growth.cpp.o"
  "CMakeFiles/bench_fig7_qtable_growth.dir/bench_fig7_qtable_growth.cpp.o.d"
  "bench_fig7_qtable_growth"
  "bench_fig7_qtable_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_qtable_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
