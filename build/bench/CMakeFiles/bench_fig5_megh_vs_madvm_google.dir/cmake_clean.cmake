file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_megh_vs_madvm_google.dir/bench_fig5_megh_vs_madvm_google.cpp.o"
  "CMakeFiles/bench_fig5_megh_vs_madvm_google.dir/bench_fig5_megh_vs_madvm_google.cpp.o.d"
  "bench_fig5_megh_vs_madvm_google"
  "bench_fig5_megh_vs_madvm_google.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_megh_vs_madvm_google.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
