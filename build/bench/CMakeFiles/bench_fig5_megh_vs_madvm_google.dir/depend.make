# Empty dependencies file for bench_fig5_megh_vs_madvm_google.
# This may be replaced when dependencies are built.
