file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_megh.dir/bench_ablation_megh.cpp.o"
  "CMakeFiles/bench_ablation_megh.dir/bench_ablation_megh.cpp.o.d"
  "bench_ablation_megh"
  "bench_ablation_megh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_megh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
