# Empty compiler generated dependencies file for bench_ablation_megh.
# This may be replaced when dependencies are built.
