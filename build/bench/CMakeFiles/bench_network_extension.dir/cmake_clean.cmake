file(REMOVE_RECURSE
  "CMakeFiles/bench_network_extension.dir/bench_network_extension.cpp.o"
  "CMakeFiles/bench_network_extension.dir/bench_network_extension.cpp.o.d"
  "bench_network_extension"
  "bench_network_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
