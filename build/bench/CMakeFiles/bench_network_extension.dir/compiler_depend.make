# Empty compiler generated dependencies file for bench_network_extension.
# This may be replaced when dependencies are built.
