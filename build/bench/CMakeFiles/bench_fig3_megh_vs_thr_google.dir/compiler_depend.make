# Empty compiler generated dependencies file for bench_fig3_megh_vs_thr_google.
# This may be replaced when dependencies are built.
