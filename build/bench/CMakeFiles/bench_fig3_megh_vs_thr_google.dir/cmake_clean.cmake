file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_megh_vs_thr_google.dir/bench_fig3_megh_vs_thr_google.cpp.o"
  "CMakeFiles/bench_fig3_megh_vs_thr_google.dir/bench_fig3_megh_vs_thr_google.cpp.o.d"
  "bench_fig3_megh_vs_thr_google"
  "bench_fig3_megh_vs_thr_google.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_megh_vs_thr_google.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
