
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_megh_vs_thr_google.cpp" "bench/CMakeFiles/bench_fig3_megh_vs_thr_google.dir/bench_fig3_megh_vs_thr_google.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_megh_vs_thr_google.dir/bench_fig3_megh_vs_thr_google.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/megh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/megh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/megh_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/megh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/megh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/megh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/megh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
