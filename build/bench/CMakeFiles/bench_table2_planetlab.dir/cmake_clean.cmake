file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_planetlab.dir/bench_table2_planetlab.cpp.o"
  "CMakeFiles/bench_table2_planetlab.dir/bench_table2_planetlab.cpp.o.d"
  "bench_table2_planetlab"
  "bench_table2_planetlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
