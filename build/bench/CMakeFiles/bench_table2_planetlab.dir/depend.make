# Empty dependencies file for bench_table2_planetlab.
# This may be replaced when dependencies are built.
