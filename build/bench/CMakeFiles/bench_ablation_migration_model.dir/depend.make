# Empty dependencies file for bench_ablation_migration_model.
# This may be replaced when dependencies are built.
