file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_policy_step.dir/micro/bench_micro_policy_step.cpp.o"
  "CMakeFiles/bench_micro_policy_step.dir/micro/bench_micro_policy_step.cpp.o.d"
  "bench_micro_policy_step"
  "bench_micro_policy_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_policy_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
