# Empty compiler generated dependencies file for bench_micro_policy_step.
# This may be replaced when dependencies are built.
