# Empty dependencies file for bench_table3_google.
# This may be replaced when dependencies are built.
