file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_google.dir/bench_table3_google.cpp.o"
  "CMakeFiles/bench_table3_google.dir/bench_table3_google.cpp.o.d"
  "bench_table3_google"
  "bench_table3_google.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_google.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
