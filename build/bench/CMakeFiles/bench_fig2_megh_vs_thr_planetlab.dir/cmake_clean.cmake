file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_megh_vs_thr_planetlab.dir/bench_fig2_megh_vs_thr_planetlab.cpp.o"
  "CMakeFiles/bench_fig2_megh_vs_thr_planetlab.dir/bench_fig2_megh_vs_thr_planetlab.cpp.o.d"
  "bench_fig2_megh_vs_thr_planetlab"
  "bench_fig2_megh_vs_thr_planetlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_megh_vs_thr_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
