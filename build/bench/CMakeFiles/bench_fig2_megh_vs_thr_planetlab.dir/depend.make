# Empty dependencies file for bench_fig2_megh_vs_thr_planetlab.
# This may be replaced when dependencies are built.
