// Ablation (extension): flat RAM/BW bulk-copy timing vs the iterative
// pre-copy model (Clark et al. [4]) under the same workload and policies.
//
// Expected shape: pre-copy charges more service degradation per move (round
// 0 alone equals the flat copy) and adds dirty-rate-dependent stop-and-copy
// downtime, so churn-heavy THR-MMT loses more cost than Megh when the model
// is switched on; busier guests become visibly more expensive to move.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/mmt_policy.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"
#include "harness/report.hpp"

namespace megh {
namespace {

struct ModelVariant {
  const char* label;
  SimulationConfig::MigrationTimeModel model;
  double dirty_rate;
};

constexpr ModelVariant kVariants[] = {
    {"flat", SimulationConfig::MigrationTimeModel::kFlat, 0.0},
    {"precopy (20 MB/s dirty)",
     SimulationConfig::MigrationTimeModel::kPreCopy, 20.0},
    {"precopy (80 MB/s dirty)",
     SimulationConfig::MigrationTimeModel::kPreCopy, 80.0},
};

double cost_of(const ExperimentOutput& output, const std::string& label,
               const std::string& group) {
  const CellResult* cell = output.find(label, group);
  return cell ? cell->result.sim.totals.total_cost_usd : 0.0;
}

ExperimentSpec migration_model_spec() {
  ExperimentSpec spec;
  spec.name = "ablation_migration";
  spec.paper_ref = "—";
  spec.title =
      "Ablation — migration timing model (flat vs iterative pre-copy)";
  spec.paper_claim =
      "pre-copy adds dirty-rate-dependent downtime; churny policies pay "
      "more than frugal ones when it is enabled";
  spec.order = 120;
  spec.params = {
      {"hosts", 80, 80, 24, "PM count"},
      {"vms", 120, 120, 36, "VM count"},
      {"steps", 576, 2016, 60, "steps per run"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    ExperimentPlan plan;
    plan.scenarios.push_back(make_planetlab_scenario(
        scale.get_int("hosts"), scale.get_int("vms"), scale.get_int("steps"),
        seed));
    for (const ModelVariant& variant : kVariants) {
      const auto model = variant.model;
      const double dirty_rate = variant.dirty_rate;
      const auto with_model = [model, dirty_rate](SimulationConfig& config) {
        config.migration_model = model;
        config.precopy.dirty_rate_mb_per_s = dirty_rate;
      };
      {
        CellSpec cell;
        cell.label = "Megh";
        cell.group = variant.label;
        cell.rng_stream = seed;
        cell.params = {{"dirty_rate", dirty_rate}};
        cell.make = [seed] {
          MeghConfig config;
          config.seed = seed;
          return std::make_unique<MeghPolicy>(config);
        };
        cell.options.max_migration_fraction = 0.02;
        cell.options.configure_sim = with_model;
        plan.cells.push_back(std::move(cell));
      }
      {
        CellSpec cell;
        cell.label = "THR-MMT";
        cell.group = variant.label;
        cell.rng_stream = seed;
        cell.params = {{"dirty_rate", dirty_rate}};
        cell.make = [seed] { return make_thr_mmt(0.7, seed); };
        cell.options.configure_sim = with_model;
        plan.cells.push_back(std::move(cell));
      }
    }
    return plan;
  };
  spec.post = [](const ExperimentPlan&, ExperimentOutput& output) {
    const auto path = bench_output_dir() / "ablation_migration_model.csv";
    CsvWriter csv(path);
    csv.header({"policy", "model", "dirty_rate_mb_s", "total_cost_usd",
                "sla_cost_usd", "migrations", "pdm"});
    std::vector<std::vector<std::string>> rows;
    for (const CellResult& cell : output.cells) {
      const SimulationTotals& t = cell.result.sim.totals;
      rows.push_back({cell.label, cell.group, strf("%.1f", t.total_cost_usd),
                      strf("%.1f", t.sla_cost_usd),
                      strf("%lld", t.migrations), strf("%.6f", t.pdm)});
      csv.row_str({cell.label, cell.group,
                   strf("%.1f", cell.params.at("dirty_rate")),
                   strf("%.4f", t.total_cost_usd),
                   strf("%.4f", t.sla_cost_usd), strf("%lld", t.migrations),
                   strf("%.8f", t.pdm)});
    }
    print_table("Migration-model ablation",
                {"policy", "model", "cost", "SLA", "migrations", "PDM"},
                rows);
    record_artifact(output, path.string());
  };
  spec.checks = {
      {.description = "pre-copy raises THR-MMT's cost",
       .custom =
           [](const ExperimentOutput& output) {
             const double flat = cost_of(output, "THR-MMT", "flat");
             const double hot =
                 cost_of(output, "THR-MMT", "precopy (80 MB/s dirty)");
             CheckOutcome outcome;
             outcome.status = hot > flat ? CheckOutcome::Status::kPass
                                         : CheckOutcome::Status::kFail;
             outcome.detail = strf("%.1f -> %.1f", flat, hot);
             return outcome;
           }},
      {.description =
           "churny THR-MMT pays a larger absolute penalty than Megh",
       .custom =
           [](const ExperimentOutput& output) {
             const double thr_penalty =
                 cost_of(output, "THR-MMT", "precopy (80 MB/s dirty)") -
                 cost_of(output, "THR-MMT", "flat");
             const double megh_penalty =
                 cost_of(output, "Megh", "precopy (80 MB/s dirty)") -
                 cost_of(output, "Megh", "flat");
             CheckOutcome outcome;
             outcome.status = thr_penalty > megh_penalty
                                  ? CheckOutcome::Status::kPass
                                  : CheckOutcome::Status::kFail;
             outcome.detail = strf("+%.1f vs +%.1f USD", thr_penalty,
                                   megh_penalty);
             return outcome;
           }},
  };
  return spec;
}

const ExperimentRegistrar registrar(migration_model_spec());

}  // namespace
}  // namespace megh
