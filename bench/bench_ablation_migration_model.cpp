// Ablation (extension): flat RAM/BW bulk-copy timing vs the iterative
// pre-copy model (Clark et al. [4]) under the same workload and policies.
//
// Expected shape: pre-copy charges more service degradation per move (round
// 0 alone equals the flat copy) and adds dirty-rate-dependent stop-and-copy
// downtime, so churn-heavy THR-MMT loses more cost than Megh when the model
// is switched on; busier guests become visibly more expensive to move.
#include <cstdio>

#include "bench_common.hpp"
#include "baselines/mmt_policy.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"

using namespace megh;

namespace {

SimulationTotals run_with_model(const Scenario& scenario,
                                MigrationPolicy& policy, double cap,
                                SimulationConfig::MigrationTimeModel model,
                                double dirty_rate) {
  Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 3);
  SimulationConfig config = default_sim_config(cap);
  config.migration_model = model;
  config.precopy.dirty_rate_mb_per_s = dirty_rate;
  Simulation sim(std::move(dc), scenario.trace, config);
  return sim.run(policy).totals;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "PM count", "80");
  args.add_flag("vms", "VM count", "120");
  args.add_flag("steps", "steps per run (--full = 2016)", "576");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int hosts = static_cast<int>(args.get_int("hosts"));
  const int vms = static_cast<int>(args.get_int("vms"));
  const int steps = full ? 2016 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Ablation — migration timing model (flat vs iterative pre-copy)",
      "pre-copy adds dirty-rate-dependent downtime; churny policies pay "
      "more than frugal ones when it is enabled");

  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, seed);
  CsvWriter csv(bench_output_dir() / "ablation_migration_model.csv");
  csv.header({"policy", "model", "dirty_rate_mb_s", "total_cost_usd",
              "sla_cost_usd", "migrations", "pdm"});
  std::vector<std::vector<std::string>> rows;

  struct Cell {
    const char* label;
    SimulationConfig::MigrationTimeModel model;
    double dirty_rate;
  };
  const Cell cells[] = {
      {"flat", SimulationConfig::MigrationTimeModel::kFlat, 0.0},
      {"precopy (20 MB/s dirty)", SimulationConfig::MigrationTimeModel::kPreCopy,
       20.0},
      {"precopy (80 MB/s dirty)", SimulationConfig::MigrationTimeModel::kPreCopy,
       80.0},
  };

  double megh_flat = 0, megh_hot = 0, thr_flat = 0, thr_hot = 0;
  for (const Cell& cell : cells) {
    {
      MeghConfig config;
      config.seed = seed;
      MeghPolicy megh(config);
      const SimulationTotals t =
          run_with_model(scenario, megh, 0.02, cell.model, cell.dirty_rate);
      rows.push_back({"Megh", cell.label, strf("%.1f", t.total_cost_usd),
                      strf("%.1f", t.sla_cost_usd),
                      strf("%lld", t.migrations), strf("%.6f", t.pdm)});
      csv.row_str({"Megh", cell.label, strf("%.1f", cell.dirty_rate),
                   strf("%.4f", t.total_cost_usd),
                   strf("%.4f", t.sla_cost_usd), strf("%lld", t.migrations),
                   strf("%.8f", t.pdm)});
      if (cell.dirty_rate == 0.0) megh_flat = t.total_cost_usd;
      if (cell.dirty_rate == 80.0) megh_hot = t.total_cost_usd;
    }
    {
      auto thr = make_thr_mmt(0.7, seed);
      const SimulationTotals t =
          run_with_model(scenario, *thr, 0.0, cell.model, cell.dirty_rate);
      rows.push_back({"THR-MMT", cell.label, strf("%.1f", t.total_cost_usd),
                      strf("%.1f", t.sla_cost_usd),
                      strf("%lld", t.migrations), strf("%.6f", t.pdm)});
      csv.row_str({"THR-MMT", cell.label, strf("%.1f", cell.dirty_rate),
                   strf("%.4f", t.total_cost_usd),
                   strf("%.4f", t.sla_cost_usd), strf("%lld", t.migrations),
                   strf("%.8f", t.pdm)});
      if (cell.dirty_rate == 0.0) thr_flat = t.total_cost_usd;
      if (cell.dirty_rate == 80.0) thr_hot = t.total_cost_usd;
    }
  }

  print_table("Migration-model ablation",
              {"policy", "model", "cost", "SLA", "migrations", "PDM"}, rows);

  std::printf("\nshape checks:\n");
  std::printf("  pre-copy raises THR-MMT's cost: %s (%.1f -> %.1f)\n",
              thr_hot > thr_flat ? "PASS" : "FAIL", thr_flat, thr_hot);
  const double megh_penalty = megh_hot - megh_flat;
  const double thr_penalty = thr_hot - thr_flat;
  std::printf("  churny THR-MMT pays a larger absolute penalty than Megh: "
              "%s (+%.1f vs +%.1f USD)\n",
              thr_penalty > megh_penalty ? "PASS" : "FAIL", thr_penalty,
              megh_penalty);
  std::printf("wrote %s\n",
              (bench_output_dir() / "ablation_migration_model.csv").c_str());
  return 0;
}
