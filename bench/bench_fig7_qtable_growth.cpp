// Figure 7 reproduction: growth of the number of non-zero elements in
// Megh's Q-table with time, for increasing numbers of PMs (with #VMs =
// #PMs, as in the paper).
//
// Paper shape: nnz grows linearly with time; larger fleets shift the curve
// up by a factor roughly linear in the PM count (~0.3 per PM) — i.e. the
// model stays sublinear in the d = N × M action space and each iteration's
// complexity increment is constant.
#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"
#include "harness/report.hpp"

namespace megh {
namespace {

std::vector<int> fig7_sizes(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return {50, 100};
    case Scale::kReduced:
      return {50, 100, 200};
    case Scale::kFull:
      return {100, 200, 400, 800};
  }
  return {};
}

struct NnzFit {
  int size = 0;
  double final_nnz = 0.0;
  double slope = 0.0;
  double r2 = 1.0;
};

/// Linear fit nnz ≈ a + b·t per cell (the "grows linearly" claim).
std::vector<NnzFit> fit_growth(const ExperimentOutput& output) {
  std::vector<NnzFit> fits;
  for (const CellResult& cell : output.cells) {
    const auto nnz = cell.result.sim.series("qtable_nnz");
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const int n = static_cast<int>(nnz.size());
    for (int i = 0; i < n; ++i) {
      sx += i;
      sy += nnz[static_cast<std::size_t>(i)];
      sxx += static_cast<double>(i) * i;
      sxy += i * nnz[static_cast<std::size_t>(i)];
    }
    const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    const double intercept = (sy - slope * sx) / n;
    double ss_res = 0, ss_tot = 0;
    const double mean_y = sy / n;
    for (int i = 0; i < n; ++i) {
      const double y = nnz[static_cast<std::size_t>(i)];
      const double fit = intercept + slope * i;
      ss_res += (y - fit) * (y - fit);
      ss_tot += (y - mean_y) * (y - mean_y);
    }
    NnzFit fit;
    fit.size = static_cast<int>(cell.params.at("size"));
    fit.final_nnz = nnz.back();
    fit.slope = slope;
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    fits.push_back(fit);
  }
  return fits;
}

ExperimentSpec fig7_spec() {
  ExperimentSpec spec;
  spec.name = "fig7";
  spec.paper_ref = "Figure 7";
  spec.title = "Figure 7 — Q-table non-zeros vs time and fleet size";
  spec.paper_claim =
      "nnz grows linearly with time and shifts linearly with #PMs "
      "(sublinear in the N x M action space)";
  spec.order = 90;
  spec.params = {
      {"steps", 288, 864, 48, "steps per run"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    ExperimentPlan plan;
    for (int size : fig7_sizes(scale.scale)) {
      plan.scenarios.push_back(make_planetlab_scenario(
          size, size, scale.get_int("steps"), seed));
      CellSpec cell;
      cell.label = "Megh";
      cell.group = strf("m=%d", size);
      cell.scenario = static_cast<int>(plan.scenarios.size()) - 1;
      cell.rng_stream = seed;
      cell.params = {{"size", static_cast<double>(size)}};
      cell.make = [seed] {
        MeghConfig config;
        config.seed = seed;
        return std::make_unique<MeghPolicy>(config);
      };
      cell.options.max_migration_fraction = 0.02;
      plan.cells.push_back(std::move(cell));
    }
    return plan;
  };
  spec.post = [](const ExperimentPlan&, ExperimentOutput& output) {
    const auto path = bench_output_dir() / "fig7_qtable_growth.csv";
    CsvWriter csv(path);
    csv.header({"pms", "step", "qtable_nnz"});
    for (const CellResult& cell : output.cells) {
      const auto nnz = cell.result.sim.series("qtable_nnz");
      for (std::size_t i = 0; i < nnz.size(); i += 4) {
        csv.row({cell.params.at("size"), static_cast<double>(i), nnz[i]});
      }
    }

    std::vector<std::vector<std::string>> rows;
    for (const NnzFit& fit : fit_growth(output)) {
      rows.push_back({std::to_string(fit.size), strf("%.0f", fit.final_nnz),
                      strf("%.2f", fit.slope), strf("%.3f", fit.r2),
                      strf("%.2f", fit.final_nnz / fit.size)});
      std::printf("  %d PMs: final nnz %.0f, growth %.2f nnz/step (R²=%.3f)\n",
                  fit.size, fit.final_nnz, fit.slope, fit.r2);
    }
    print_table("Figure 7 — Q-table growth",
                {"#PMs", "final nnz", "nnz/step", "linear R^2", "nnz per PM"},
                rows);
    record_artifact(output, path.string());
  };
  spec.checks = {
      {.description = "linear-in-time growth (R² > 0.9)",
       .custom =
           [](const ExperimentOutput& output) {
             const auto fits = fit_growth(output);
             CheckOutcome outcome;
             outcome.status = fits.front().r2 > 0.9
                                  ? CheckOutcome::Status::kPass
                                  : CheckOutcome::Status::kFail;
             outcome.detail = strf("R²=%.3f", fits.front().r2);
             return outcome;
           }},
      {.description = "sublinear in d = N x M (nnz ratio << d ratio)",
       .custom =
           [](const ExperimentOutput& output) {
             const auto fits = fit_growth(output);
             const double nnz_ratio =
                 fits.back().final_nnz / fits.front().final_nnz;
             const double d_ratio =
                 static_cast<double>(fits.back().size) * fits.back().size /
                 (static_cast<double>(fits.front().size) *
                  fits.front().size);
             CheckOutcome outcome;
             outcome.status = nnz_ratio < d_ratio
                                  ? CheckOutcome::Status::kPass
                                  : CheckOutcome::Status::kFail;
             outcome.detail = strf("nnz ratio %.1fx vs d ratio %.1fx",
                                   nnz_ratio, d_ratio);
             return outcome;
           }},
  };
  return spec;
}

const ExperimentRegistrar registrar(fig7_spec());

}  // namespace
}  // namespace megh
