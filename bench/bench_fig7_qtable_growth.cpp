// Figure 7 reproduction: growth of the number of non-zero elements in
// Megh's Q-table with time, for increasing numbers of PMs (with #VMs =
// #PMs, as in the paper).
//
// Paper shape: nnz grows linearly with time; larger fleets shift the curve
// up by a factor roughly linear in the PM count (~0.3 per PM) — i.e. the
// model stays sublinear in the d = N × M action space and each iteration's
// complexity increment is constant.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("steps", "steps per run (--full = 864)", "288");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int steps = full ? 864 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::vector<int> sizes = full ? std::vector<int>{100, 200, 400, 800}
                                      : std::vector<int>{50, 100, 200};

  bench::print_banner(
      "Figure 7 — Q-table non-zeros vs time and fleet size",
      "nnz grows linearly with time and shifts linearly with #PMs "
      "(sublinear in the N x M action space)");

  CsvWriter csv(bench_output_dir() / "fig7_qtable_growth.csv");
  csv.header({"pms", "step", "qtable_nnz"});

  std::vector<std::vector<std::string>> rows;
  for (int size : sizes) {
    const Scenario scenario =
        make_planetlab_scenario(size, size, steps, seed);
    MeghConfig config;
    config.seed = seed;
    MeghPolicy megh(config);
    ExperimentOptions options;
    options.max_migration_fraction = 0.02;
    const ExperimentResult r = run_experiment(scenario, megh, options);
    const auto nnz = r.sim.series("qtable_nnz");
    for (std::size_t i = 0; i < nnz.size(); i += 4) {
      csv.row({static_cast<double>(size), static_cast<double>(i), nnz[i]});
    }
    // Linear fit nnz ≈ a + b·t to report the growth rate.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const int n = static_cast<int>(nnz.size());
    for (int i = 0; i < n; ++i) {
      sx += i;
      sy += nnz[static_cast<std::size_t>(i)];
      sxx += static_cast<double>(i) * i;
      sxy += i * nnz[static_cast<std::size_t>(i)];
    }
    const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    const double intercept = (sy - slope * sx) / n;
    // R² of the linear fit (the "grows linearly" claim).
    double ss_res = 0, ss_tot = 0;
    const double mean_y = sy / n;
    for (int i = 0; i < n; ++i) {
      const double y = nnz[static_cast<std::size_t>(i)];
      const double fit = intercept + slope * i;
      ss_res += (y - fit) * (y - fit);
      ss_tot += (y - mean_y) * (y - mean_y);
    }
    const double r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    rows.push_back({std::to_string(size), strf("%.0f", nnz.back()),
                    strf("%.2f", slope), strf("%.3f", r2),
                    strf("%.2f", nnz.back() / size)});
    std::printf("  %d PMs: final nnz %.0f, growth %.2f nnz/step (R²=%.3f)\n",
                size, nnz.back(), slope, r2);
  }

  print_table("Figure 7 — Q-table growth",
              {"#PMs", "final nnz", "nnz/step", "linear R^2", "nnz per PM"},
              rows);

  std::printf("\nshape checks:\n");
  const double first_r2 = parse_double(rows.front()[3], "r2");
  std::printf("  linear-in-time growth (R² > 0.9): %s\n",
              first_r2 > 0.9 ? "PASS" : "FAIL");
  const double small = parse_double(rows.front()[1], "nnz");
  const double large = parse_double(rows.back()[1], "nnz");
  const double d_ratio =
      static_cast<double>(sizes.back()) * sizes.back() /
      (static_cast<double>(sizes.front()) * sizes.front());
  std::printf("  sublinear in d = N x M (nnz ratio %.1fx << d ratio %.1fx): %s\n",
              large / small, d_ratio, large / small < d_ratio ? "PASS" : "FAIL");
  std::printf("wrote %s\n",
              (bench_output_dir() / "fig7_qtable_growth.csv").c_str());
  return 0;
}
