// Ablation bench (beyond the paper's figures): isolates the design choices
// DESIGN.md documents for this reproduction —
//   * the advantage baseline in the critic update vs Algorithm 1's raw
//     cost accumulation;
//   * windowed vs paper-literal cumulative SLA accounting;
//   * graded (excess) vs binary overload downtime;
//   * Q-learning with and without its offline training phase (the paper's
//     Sec. 2.2 argument for why Q-learning was dropped as a comparator).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/qlearning.hpp"
#include "baselines/sandpiper.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"
#include "harness/report.hpp"

namespace megh {
namespace {

/// One Megh variant cell: tweaked MeghConfig and/or tweaked cost model,
/// always under the paper's 2% migration cap.
CellSpec megh_variant(const std::string& label, std::uint64_t seed,
                      std::function<void(MeghConfig&)> tweak = nullptr,
                      std::function<void(CostConfig&)> cost = nullptr) {
  CellSpec cell;
  cell.label = label;
  cell.rng_stream = seed;
  cell.make = [seed, tweak] {
    MeghConfig config;
    config.seed = seed;
    if (tweak) tweak(config);
    return std::make_unique<MeghPolicy>(config);
  };
  cell.options.max_migration_fraction = 0.02;
  if (cost) {
    cell.options.configure_sim = [cost](SimulationConfig& config) {
      cost(config.cost);
    };
  }
  return cell;
}

ExperimentSpec ablation_spec() {
  ExperimentSpec spec;
  spec.name = "ablation";
  spec.paper_ref = "—";
  spec.title = "Ablation — reproduction design choices";
  spec.paper_claim = "(not a paper table; justifies DESIGN.md decisions)";
  spec.order = 110;
  spec.params = {
      {"hosts", 80, 80, 24, "PM count"},
      {"vms", 120, 120, 36, "VM count"},
      {"steps", 576, 2016, 60, "steps per run"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    const int hosts = scale.get_int("hosts");
    const int vms = scale.get_int("vms");
    const int steps = scale.get_int("steps");
    ExperimentPlan plan;
    plan.scenarios.push_back(
        make_planetlab_scenario(hosts, vms, steps, seed));
    // Offline-training workload for the last Q-learning cell: a *different*
    // seed's trace.
    plan.scenarios.push_back(
        make_planetlab_scenario(hosts, vms, steps, seed + 5000));

    plan.cells.push_back(megh_variant("Megh (default)", seed));
    plan.cells.push_back(megh_variant(
        "Megh, raw Algorithm-1 costs", seed,
        [](MeghConfig& c) { c.advantage_baseline = false; }));
    plan.cells.push_back(megh_variant(
        "Megh, delta = d (paper literal)", seed,
        // paper's B0 = (1/d) I: Q-scale ~1/d, actor ~uniform
        [](MeghConfig& c) { c.delta = -1.0; }));
    plan.cells.push_back(megh_variant(
        "Megh, cumulative SLA (paper-lit.)", seed, nullptr,
        [](CostConfig& c) { c.sla_accounting = SlaAccounting::kCumulative; }));
    plan.cells.push_back(megh_variant(
        "Megh, binary overload downtime", seed, nullptr,
        [](CostConfig& c) { c.overload_mode = OverloadDowntimeMode::kBinary; }));
    plan.cells.push_back(megh_variant("Megh, gamma = 0 (myopic)", seed,
                                      [](MeghConfig& c) { c.gamma = 0.0; }));
    plan.cells.push_back(megh_variant("Megh, gamma = 0.9", seed,
                                      [](MeghConfig& c) { c.gamma = 0.9; }));

    {
      CellSpec cell;
      cell.label = "Sandpiper (hotspot-only)";
      cell.rng_stream = seed;
      cell.make = [] { return std::make_unique<SandpiperPolicy>(); };
      plan.cells.push_back(std::move(cell));
    }
    // Q-learning with and without its offline training phase (Sec. 2.2).
    {
      CellSpec cell;
      cell.label = "Q-learning, no offline training";
      cell.rng_stream = seed;
      cell.make = [seed] {
        QLearningConfig qc;
        qc.seed = seed;
        auto ql = std::make_unique<QLearningPolicy>(qc);
        ql->set_training(false);  // deployed cold: no training phase
        return ql;
      };
      plan.cells.push_back(std::move(cell));
    }
    {
      CellSpec cell;
      cell.label = "Q-learning, offline-trained";
      cell.rng_stream = seed;
      cell.run = [seed](const std::vector<Scenario>& scenarios) {
        QLearningConfig qc;
        qc.seed = seed;
        QLearningPolicy ql(qc);
        // Offline training pass on the alternate workload, then deploy.
        ExperimentOptions options;
        ql.set_training(true);
        (void)run_experiment(scenarios[1], ql, options);
        ql.set_training(false);
        return run_experiment(scenarios[0], ql, options);
      };
      plan.cells.push_back(std::move(cell));
    }
    return plan;
  };
  spec.post = [](const ExperimentPlan&, ExperimentOutput& output) {
    const auto path = bench_output_dir() / "ablation_megh.csv";
    CsvWriter csv(path);
    csv.header({"variant", "total_cost_usd", "sla_cost_usd", "migrations",
                "mean_active_hosts"});
    std::vector<std::vector<std::string>> rows;
    for (const CellResult& cell : output.cells) {
      const SimulationTotals& t = cell.result.sim.totals;
      rows.push_back({cell.label, strf("%.1f", t.total_cost_usd),
                      strf("%.1f", t.sla_cost_usd),
                      strf("%lld", t.migrations),
                      strf("%.1f", t.mean_active_hosts)});
      csv.row_str({cell.label, strf("%.4f", t.total_cost_usd),
                   strf("%.4f", t.sla_cost_usd), strf("%lld", t.migrations),
                   strf("%.2f", t.mean_active_hosts)});
      std::printf("  %-34s cost %8.1f  SLA %8.1f  migrations %6lld\n",
                  cell.label.c_str(), t.total_cost_usd, t.sla_cost_usd,
                  t.migrations);
    }
    print_table("Ablation summary",
                {"variant", "cost", "SLA", "migrations", "hosts"}, rows);
    record_artifact(output, path.string());
  };
  return spec;
}

const ExperimentRegistrar registrar(ablation_spec());

}  // namespace
}  // namespace megh
