// Ablation bench (beyond the paper's figures): isolates the design choices
// DESIGN.md documents for this reproduction —
//   * the advantage baseline in the critic update vs Algorithm 1's raw
//     cost accumulation;
//   * windowed vs paper-literal cumulative SLA accounting;
//   * graded (excess) vs binary overload downtime;
//   * Q-learning with and without its offline training phase (the paper's
//     Sec. 2.2 argument for why Q-learning was dropped as a comparator).
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "baselines/qlearning.hpp"
#include "baselines/sandpiper.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace megh;

namespace {

SimulationTotals run_megh(const Scenario& scenario, const MeghConfig& config,
                          const CostConfig& cost) {
  MeghPolicy megh(config);
  Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 3);
  SimulationConfig sim_config = default_sim_config(0.02);
  sim_config.cost = cost;
  Simulation sim(std::move(dc), scenario.trace, sim_config);
  return sim.run(megh).totals;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "PM count", "80");
  args.add_flag("vms", "VM count", "120");
  args.add_flag("steps", "steps per run (--full = 2016)", "576");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int hosts = static_cast<int>(args.get_int("hosts"));
  const int vms = static_cast<int>(args.get_int("vms"));
  const int steps = full ? 2016 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner("Ablation — reproduction design choices",
                      "(not a paper table; justifies DESIGN.md decisions)");

  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, seed);
  std::vector<std::vector<std::string>> rows;
  CsvWriter csv(bench_output_dir() / "ablation_megh.csv");
  csv.header({"variant", "total_cost_usd", "sla_cost_usd", "migrations",
              "mean_active_hosts"});
  const auto record = [&](const std::string& name,
                          const SimulationTotals& t) {
    rows.push_back({name, strf("%.1f", t.total_cost_usd),
                    strf("%.1f", t.sla_cost_usd),
                    strf("%lld", t.migrations),
                    strf("%.1f", t.mean_active_hosts)});
    csv.row_str({name, strf("%.4f", t.total_cost_usd),
                 strf("%.4f", t.sla_cost_usd), strf("%lld", t.migrations),
                 strf("%.2f", t.mean_active_hosts)});
    std::printf("  %-34s cost %8.1f  SLA %8.1f  migrations %6lld\n",
                name.c_str(), t.total_cost_usd, t.sla_cost_usd, t.migrations);
  };

  MeghConfig megh_default;
  megh_default.seed = seed;
  CostConfig cost_default;

  record("Megh (default)", run_megh(scenario, megh_default, cost_default));

  {
    MeghConfig c = megh_default;
    c.advantage_baseline = false;
    record("Megh, raw Algorithm-1 costs", run_megh(scenario, c, cost_default));
  }
  {
    MeghConfig c = megh_default;
    c.delta = -1.0;  // paper's B0 = (1/d) I: Q-scale ~1/d, actor ~uniform
    record("Megh, delta = d (paper literal)",
           run_megh(scenario, c, cost_default));
  }
  {
    CostConfig c = cost_default;
    c.sla_accounting = SlaAccounting::kCumulative;
    record("Megh, cumulative SLA (paper-lit.)",
           run_megh(scenario, megh_default, c));
  }
  {
    CostConfig c = cost_default;
    c.overload_mode = OverloadDowntimeMode::kBinary;
    record("Megh, binary overload downtime",
           run_megh(scenario, megh_default, c));
  }
  {
    MeghConfig c = megh_default;
    c.gamma = 0.0;  // myopic critic
    record("Megh, gamma = 0 (myopic)", run_megh(scenario, c, cost_default));
  }
  {
    MeghConfig c = megh_default;
    c.gamma = 0.9;  // long-horizon critic
    record("Megh, gamma = 0.9", run_megh(scenario, c, cost_default));
  }

  {
    SandpiperPolicy sandpiper;
    ExperimentOptions options;
    const ExperimentResult r = run_experiment(scenario, sandpiper, options);
    record("Sandpiper (hotspot-only)", r.sim.totals);
  }

  // Q-learning with and without its offline training phase (Sec. 2.2).
  {
    QLearningConfig qc;
    qc.seed = seed;
    QLearningPolicy ql(qc);
    ql.set_training(false);  // deployed cold: no training phase
    ExperimentOptions options;
    const ExperimentResult r = run_experiment(scenario, ql, options);
    record("Q-learning, no offline training", r.sim.totals);
  }
  {
    QLearningConfig qc;
    qc.seed = seed;
    QLearningPolicy ql(qc);
    // Offline training pass on a *different* seed's workload, then deploy.
    const Scenario train =
        make_planetlab_scenario(hosts, vms, steps, seed + 5000);
    ql.set_training(true);
    ExperimentOptions options;
    (void)run_experiment(train, ql, options);
    ql.set_training(false);
    const ExperimentResult r = run_experiment(scenario, ql, options);
    record("Q-learning, offline-trained", r.sim.totals);
  }

  print_table("Ablation summary",
              {"variant", "cost", "SLA", "migrations", "hosts"}, rows);
  std::printf("wrote %s\n", (bench_output_dir() / "ablation_megh.csv").c_str());
  return 0;
}
