// Figure 5 reproduction: Megh vs MadVM on a 100-PM / 150-VM subset of the
// Google Cluster workload over 3 days.
//
// Paper shape: Megh 8.8% cheaper per step, converges at ~40 steps (MadVM
// ~700), 6.1x fewer migrations, ~20 active hosts vs ~34, ~1/1000 of the
// execution overhead (8 ms vs 4057 ms).
#include <cstdio>

#include "bench_common.hpp"
#include "baselines/madvm.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "metrics/convergence.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "subset PM count (--full = 100)", "60");
  args.add_flag("vms", "subset VM count (--full = 150)", "90");
  args.add_flag("steps", "steps (--full = 864, i.e. 3 days)", "288");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int hosts = full ? 100 : static_cast<int>(args.get_int("hosts"));
  const int vms = full ? 150 : static_cast<int>(args.get_int("vms"));
  const int steps = full ? 864 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Figure 5 — Megh vs MadVM on a Google Cluster subset",
      "Megh: 8.8% cheaper per step, 6.1x fewer migrations, ~1/1000 of the "
      "execution overhead");

  const Scenario base = make_google_scenario(std::max(hosts, 200),
                                             std::max(vms, 300), steps, seed);
  const Scenario scenario = subset_scenario(base, hosts, vms, seed + 1);

  std::vector<ExperimentResult> results;
  for (const PolicyEntry& entry : rl_roster(seed)) {
    auto policy = entry.make();
    ExperimentOptions options;
    options.placement = InitialPlacement::kRandom;
    options.max_migration_fraction = entry.max_migration_fraction;
    results.push_back(run_experiment(scenario, *policy, options));
    std::printf("  %-6s done: cost %.1f USD, %lld migrations, %.3f ms/step\n",
                entry.name.c_str(), results.back().sim.totals.total_cost_usd,
                results.back().sim.totals.migrations,
                results.back().sim.totals.mean_exec_ms);
  }
  write_series_csvs(results, "fig5");
  print_performance_table("Figure 5 — Megh vs MadVM (Google subset)",
                          results, "fig5_summary");

  const auto& megh = results[0].sim.totals;
  const auto& madvm = results[1].sim.totals;
  std::printf("\nconvergence:\n  %s\n  %s\n",
              convergence_summary(results[0]).c_str(),
              convergence_summary(results[1]).c_str());
  std::printf("\nshape checks:\n");
  std::printf("  Megh total cost <= MadVM: %s (%.1f vs %.1f)\n",
              megh.total_cost_usd <= madvm.total_cost_usd ? "PASS" : "FAIL",
              megh.total_cost_usd, madvm.total_cost_usd);
  std::printf("  Megh migrations << MadVM: %s (%.1fx fewer)\n",
              megh.migrations * 2 < madvm.migrations ? "PASS" : "FAIL",
              megh.migrations > 0
                  ? static_cast<double>(madvm.migrations) / megh.migrations
                  : 0.0);
  std::printf("  Megh exec time far below MadVM: %s (%.3f vs %.3f ms, %.0fx)\n",
              megh.mean_exec_ms * 5 < madvm.mean_exec_ms ? "PASS" : "FAIL",
              megh.mean_exec_ms, madvm.mean_exec_ms,
              megh.mean_exec_ms > 0 ? madvm.mean_exec_ms / megh.mean_exec_ms
                                    : 0.0);
  return 0;
}
