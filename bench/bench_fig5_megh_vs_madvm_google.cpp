// Figure 5 reproduction: Megh vs MadVM on a 100-PM / 150-VM subset of the
// Google Cluster workload over 3 days.
//
// Paper shape: Megh 8.8% cheaper per step, converges at ~40 steps (MadVM
// ~700), 6.1x fewer migrations, ~20 active hosts vs ~34, ~1/1000 of the
// execution overhead (8 ms vs 4057 ms).
#include <algorithm>

#include "baselines/madvm.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"

namespace megh {
namespace {

ExperimentSpec fig5_spec() {
  ExperimentSpec spec;
  spec.name = "fig5";
  spec.paper_ref = "Figure 5";
  spec.title = "Figure 5 — Megh vs MadVM on a Google Cluster subset";
  spec.paper_claim =
      "Megh: 8.8% cheaper per step, 6.1x fewer migrations, ~1/1000 of the "
      "execution overhead";
  spec.order = 70;
  spec.params = {
      {"hosts", 60, 100, 20, "subset PM count"},
      {"vms", 90, 150, 30, "subset VM count"},
      {"steps", 288, 864, 48, "5-minute steps (paper: 3 days)"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    const int hosts = scale.get_int("hosts");
    const int vms = scale.get_int("vms");
    ExperimentPlan plan;
    const Scenario base =
        make_google_scenario(std::max(hosts, 200), std::max(vms, 300),
                             scale.get_int("steps"), seed);
    plan.scenarios.push_back(subset_scenario(base, hosts, vms, seed + 1));
    for (const PolicyEntry& entry : rl_roster(seed)) {
      CellSpec cell;
      cell.label = entry.name;
      cell.rng_stream = seed;
      cell.make = entry.make;
      cell.options.placement = InitialPlacement::kRandom;
      cell.options.max_migration_fraction = entry.max_migration_fraction;
      plan.cells.push_back(std::move(cell));
    }
    return plan;
  };
  spec.report.summary_csv = "fig5_summary";
  spec.report.series_csv = "fig5";
  spec.report.convergence = true;
  spec.report.convergence_note =
      "convergence (paper: Megh ~40 steps, MadVM ~700):";
  spec.checks = {
      {.description = "Megh total cost <= MadVM",
       .metric = "total_cost_usd",
       .lhs = "Megh",
       .rhs = "MadVM",
       .relation = CheckRelation::kLessEq},
      {.description = "Megh migrations << MadVM (>2x fewer)",
       .metric = "migrations",
       .lhs = "Megh",
       .rhs = "MadVM",
       .relation = CheckRelation::kLess,
       .rhs_scale = 0.5},
      {.description = "Megh exec time far below MadVM (>5x)",
       .metric = "mean_exec_ms",
       .lhs = "Megh",
       .rhs = "MadVM",
       .relation = CheckRelation::kLess,
       .rhs_scale = 0.2},
  };
  return spec;
}

const ExperimentRegistrar registrar(fig5_spec());

}  // namespace
}  // namespace megh
