// The one bench driver. Every experiment in bench/ registers an
// ExperimentSpec (harness/experiment_registry.hpp); this binary lists them
// (--list), runs a selection (--only table2,fig2) or the whole suite
// (--all) through the experiment engine, and writes one machine-readable
// results.json next to the CSVs.
//
//   megh_bench --list
//   megh_bench --all --jobs 2                 # reduced-scale suite
//   megh_bench --all --full --jobs 1          # paper scale, timing-grade
//   megh_bench --only fig6 --jobs 1           # Fig. 6 wants real latencies
//   megh_bench --only table2 --set hosts=40,vms=60,steps=100
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "harness/experiment_engine.hpp"
#include "harness/experiment_registry.hpp"
#include "harness/report.hpp"
#include "harness/results_json.hpp"

using namespace megh;

namespace {

void list_experiments() {
  std::printf("%-20s %-10s %s\n", "name", "paper", "experiment");
  std::printf("%-20s %-10s %s\n", "----", "-----", "----------");
  for (const ExperimentSpec* spec : ExperimentRegistry::instance().all()) {
    std::printf("%-20s %-10s %s\n", spec->name.c_str(),
                spec->paper_ref.c_str(), spec->title.c_str());
    std::printf("%-20s %-10s   %s\n", "", "", spec->paper_claim.c_str());
    for (const ScaleParam& param : spec->params) {
      std::printf("%-20s %-10s   --set %s=… (reduced %g, full %g) %s\n", "",
                  "", param.name.c_str(), param.reduced, param.full,
                  param.help.c_str());
    }
  }
  std::printf("\nrun with: megh_bench --only <name>[,<name>…] or --all "
              "(add --full for paper scale)\n");
}

std::map<std::string, double> parse_overrides(const std::string& sets) {
  std::map<std::string, double> overrides;
  if (sets.empty()) return overrides;
  for (const std::string& entry : split(sets, ',')) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("--set expects k=v[,k=v...], got '" + entry + "'");
    }
    overrides[std::string(trim(entry.substr(0, eq)))] =
        parse_double(trim(entry.substr(eq + 1)), "--set " + entry);
  }
  return overrides;
}

std::vector<const ExperimentSpec*> select_specs(const Args& args) {
  const ExperimentRegistry& registry = ExperimentRegistry::instance();
  if (args.get_bool("all")) return registry.all();
  std::vector<const ExperimentSpec*> specs;
  for (const std::string& name : split(args.get("only"), ',')) {
    const ExperimentSpec* spec = registry.find(std::string(trim(name)));
    if (spec == nullptr) {
      throw ConfigError("unknown experiment '" + std::string(trim(name)) +
                        "' (see megh_bench --list)");
    }
    specs.push_back(spec);
  }
  return specs;
}

int run(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_bool("list", "list registered experiments and exit");
  args.add_bool("all", "run every registered experiment in paper order");
  args.add_flag("only", "comma-separated experiment names to run", "");
  args.add_flag("scale", "smoke | reduced | full (--full implies full)",
                "reduced");
  args.add_flag("set", "scale overrides, k=v[,k=v...]", "");
  args.add_flag("results",
                "results.json path (default <bench-out>/results.json)", "");
  args.add_flag("cell-traces",
                "write one per-step JSONL trace per cell into this "
                "directory (readable by trace_summary)",
                "");
  args.add_bool("strict",
                "exit non-zero on any shape-check failure; without it "
                "failures only affect the exit code at --full scale");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);

  if (args.get_bool("list")) {
    list_experiments();
    return 0;
  }
  if (!args.get_bool("all") && args.get("only").empty()) {
    std::printf("%s", args.usage("megh_bench").c_str());
    std::printf("\npick --list, --all or --only <name> "
                "(megh_bench --list shows the registry)\n");
    return 0;
  }

  EngineConfig config;
  config.scale = bench::full_scale(args) ? Scale::kFull
                                         : parse_scale(args.get("scale"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.jobs = bench::jobs(args);
  config.scale_overrides = parse_overrides(args.get("set"));
  config.cell_trace_dir = args.get("cell-traces");

  const std::vector<const ExperimentSpec*> specs = select_specs(args);

  std::string command = "megh_bench";
  for (int i = 1; i < argc; ++i) command += std::string(" ") + argv[i];

  Stopwatch timer;
  std::vector<ExperimentOutput> outputs;
  outputs.reserve(specs.size());
  for (const ExperimentSpec* spec : specs) {
    outputs.push_back(run_experiment_spec(*spec, config));
  }

  BenchRunMetadata metadata;
  metadata.command = command;
  metadata.scale = config.scale;
  metadata.seed = config.seed;
  metadata.jobs = outputs.empty() ? config.jobs : outputs.front().jobs;
  metadata.hardware_concurrency =
      static_cast<int>(std::thread::hardware_concurrency());
  metadata.wall_ms = timer.elapsed_ms();

  const std::filesystem::path results_path =
      args.get("results").empty()
          ? bench_output_dir() / "results.json"
          : std::filesystem::path(args.get("results"));
  write_results_json(results_path, metadata, outputs);

  int checks = 0, failed = 0;
  for (const ExperimentOutput& output : outputs) {
    for (const auto& [description, outcome] : output.check_results) {
      ++checks;
      if (outcome.status == CheckOutcome::Status::kFail) ++failed;
    }
  }
  std::printf("\n==== %zu experiment(s), %d shape check(s), %d failure(s) "
              "in %.1f s ====\n",
              outputs.size(), checks, failed, metadata.wall_ms / 1000.0);
  std::printf("results: %s\n", results_path.c_str());
  // The paper's claims are only contractual at --full scale; below it,
  // failed checks are reported (and recorded in results.json) but do not
  // fail the process unless --strict asks for it.
  const bool strict = args.get_bool("strict") || config.scale == Scale::kFull;
  if (failed > 0 && !strict) {
    std::printf("(%d failure(s) at %s scale tolerated; pass --strict or "
                "--full to make them fatal)\n",
                failed, scale_name(config.scale));
  }
  return failed == 0 || !strict ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "megh_bench: %s\n", e.what());
    return 1;
  }
}
