// Table 3 reproduction: Google Cluster — same metrics as Table 2.
//
// Paper (500 PMs, 2000 VMs):
//   THR-MMT  cost 706, migrations 299352, hosts  82, exec 2887 ms
//   IQR-MMT  cost 708, migrations 262185, hosts  72, exec 4030 ms
//   MAD-MMT  cost 708, migrations 266706, hosts  73, exec 4000 ms
//   LR-MMT   cost 710, migrations 233172, hosts  59, exec 3889 ms
//   LRR-MMT  cost 710, migrations 233172, hosts  59, exec 3923 ms
//   Megh     cost 688, migrations   3104, hosts 194, exec 1945 ms
// Shape: Megh wins by a small margin (2.5%), migrates ~100x less, and —
// counter-intuitively for consolidation literature — keeps MORE hosts
// active than the MMT family (Sec. 6.3 discussion).
#include "harness/experiment_registry.hpp"

namespace megh {
namespace {

ExperimentSpec table3_spec() {
  ExperimentSpec spec;
  spec.name = "table3";
  spec.paper_ref = "Table 3";
  spec.title = "Table 3 — Google Cluster performance evaluation";
  spec.paper_claim =
      "Megh reduces cost by 2.5% vs THR-MMT, ~97x fewer migrations, and "
      "keeps more hosts active than MMT (task workloads favour spreading)";
  spec.order = 30;
  spec.params = {
      {"hosts", 100, 500, 20, "PM count"},
      {"vms", 300, 2000, 50, "VM count"},
      {"steps", 576, 2016, 60, "5-minute steps"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    ExperimentPlan plan;
    plan.scenarios.push_back(make_google_scenario(
        scale.get_int("hosts"), scale.get_int("vms"), scale.get_int("steps"),
        seed));
    for (const PolicyEntry& entry : paper_roster(seed)) {
      CellSpec cell;
      cell.label = entry.name;
      cell.rng_stream = seed;
      cell.make = entry.make;
      cell.options.max_migration_fraction = entry.max_migration_fraction;
      plan.cells.push_back(std::move(cell));
    }
    return plan;
  };
  spec.report.summary_csv = "table3_google";
  spec.report.series_csv = "table3_series";
  spec.report.convergence = true;
  spec.report.convergence_note =
      "convergence (paper: Megh ~100 steps, THR-MMT ~300):";
  spec.checks = {
      {.description = "Megh within/below THR-MMT cost",
       .metric = "total_cost_usd",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kLess,
       .rhs_scale = 1.1},
      {.description = "Megh migrations << THR-MMT (>5x fewer)",
       .metric = "migrations",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kLess,
       .rhs_scale = 0.2},
      {.description = "Megh keeps MORE hosts active than THR-MMT",
       .metric = "mean_active_hosts",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kGreater},
  };
  return spec;
}

const ExperimentRegistrar registrar(table3_spec());

}  // namespace
}  // namespace megh
