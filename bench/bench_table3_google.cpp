// Table 3 reproduction: Google Cluster — same metrics as Table 2.
//
// Paper (500 PMs, 2000 VMs):
//   THR-MMT  cost 706, migrations 299352, hosts  82, exec 2887 ms
//   IQR-MMT  cost 708, migrations 262185, hosts  72, exec 4030 ms
//   MAD-MMT  cost 708, migrations 266706, hosts  73, exec 4000 ms
//   LR-MMT   cost 710, migrations 233172, hosts  59, exec 3889 ms
//   LRR-MMT  cost 710, migrations 233172, hosts  59, exec 3923 ms
//   Megh     cost 688, migrations   3104, hosts 194, exec 1945 ms
// Shape: Megh wins by a small margin (2.5%), migrates ~100x less, and —
// counter-intuitively for consolidation literature — keeps MORE hosts
// active than the MMT family (Sec. 6.3 discussion).
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "metrics/convergence.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "PM count (--full = 500)", "100");
  args.add_flag("vms", "VM count (--full = 2000)", "300");
  args.add_flag("steps", "5-minute steps (--full = 2016)", "576");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);

  const bool full = bench::full_scale(args);
  const int hosts = full ? 500 : static_cast<int>(args.get_int("hosts"));
  const int vms = full ? 2000 : static_cast<int>(args.get_int("vms"));
  const int steps = full ? 2016 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Table 3 — Google Cluster performance evaluation",
      "Megh reduces cost by 2.5% vs THR-MMT, ~97x fewer migrations, and "
      "keeps more hosts active than MMT (task workloads favour spreading)");
  std::printf("configuration: %d PMs, %d VMs, %d steps%s\n", hosts, vms,
              steps, full ? " (paper scale)" : " (reduced; --full for paper)");

  const Scenario scenario = make_google_scenario(hosts, vms, steps, seed);
  std::vector<ExperimentResult> results;
  for (const PolicyEntry& entry : paper_roster(seed)) {
    auto policy = entry.make();
    ExperimentOptions options;
    options.max_migration_fraction = entry.max_migration_fraction;
    results.push_back(run_experiment(scenario, *policy, options));
    std::printf("  %-8s done: cost %.0f USD, %lld migrations, %.3f ms/step\n",
                entry.name.c_str(), results.back().sim.totals.total_cost_usd,
                results.back().sim.totals.migrations,
                results.back().sim.totals.mean_exec_ms);
  }

  print_performance_table("Table 3 — Google Cluster", results,
                          "table3_google");
  write_series_csvs(results, "table3_series");
  std::printf("\nconvergence (paper: Megh ~100 steps, THR-MMT ~300):\n");
  for (const auto& r : results) {
    std::printf("  %s\n", convergence_summary(r).c_str());
  }

  const auto& thr = results.front().sim.totals;
  const auto& megh = results.back().sim.totals;
  std::printf("\nshape checks:\n");
  std::printf("  Megh within/below THR-MMT cost: %s (%.0f vs %.0f)\n",
              megh.total_cost_usd < thr.total_cost_usd * 1.1 ? "PASS" : "FAIL",
              megh.total_cost_usd, thr.total_cost_usd);
  std::printf("  Megh migrations << THR-MMT: %s (%lldx fewer)\n",
              megh.migrations * 5 < thr.migrations ? "PASS" : "FAIL",
              megh.migrations > 0 ? thr.migrations / megh.migrations : 0);
  std::printf("  Megh keeps MORE hosts active than THR-MMT: %s (%.0f vs %.0f)\n",
              megh.mean_active_hosts > thr.mean_active_hosts ? "PASS" : "FAIL",
              megh.mean_active_hosts, thr.mean_active_hosts);
  return 0;
}
