// Shared plumbing for the bench binaries: the --full switch (paper-scale
// configurations vs fast defaults), standard flags, and a paper-reference
// printing helper so every bench shows "paper reported → we measured".
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/args.hpp"

namespace megh::bench {

/// True when --full was passed or MEGH_BENCH_FULL=1 is set: run the paper's
/// exact configuration instead of the fast default.
inline bool full_scale(const Args& args) {
  if (args.get_bool("full")) return true;
  const char* env = std::getenv("MEGH_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

inline void add_standard_flags(Args& args) {
  args.add_bool("full", "run the paper-scale configuration");
  args.add_flag("seed", "experiment seed", "42");
}

inline void print_banner(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace megh::bench
