// Shared plumbing for the megh_bench driver: standard flags (scale
// selection, seed, worker count, telemetry) and their resolution helpers.
// Scale-dependent configuration itself lives in each ExperimentSpec's scale
// table (see harness/experiment_spec.hpp) — not here.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/args.hpp"
#include "common/string_util.hpp"
#include "telemetry/telemetry.hpp"

namespace megh::bench {

/// True when --full was passed or MEGH_BENCH_FULL=1 is set: run the paper's
/// exact configuration instead of the fast default.
inline bool full_scale(const Args& args) {
  if (args.get_bool("full")) return true;
  const char* env = std::getenv("MEGH_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Worker threads for the engine's cell shards: --jobs when given, else the
/// MEGH_JOBS environment variable, else 0 (= default_parallelism). Use
/// --jobs 1 for timing-grade per-step exec_ms numbers.
inline int jobs(const Args& args) {
  if (args.is_set("jobs")) return static_cast<int>(args.get_int("jobs"));
  if (const char* env = std::getenv("MEGH_JOBS")) {
    return static_cast<int>(parse_int(env, "MEGH_JOBS"));
  }
  return static_cast<int>(args.get_int("jobs"));
}

inline void add_standard_flags(Args& args) {
  args.add_bool("full", "run the paper-scale configuration (= --scale full)");
  args.add_flag("seed", "experiment seed", "42");
  args.add_flag("jobs",
                "worker threads for experiment cells; 0 = all cores, 1 = "
                "timing-grade (env fallback: MEGH_JOBS)",
                "0");
  args.add_flag("trace-out", "write per-step telemetry JSONL here", "");
  args.add_flag("trace-level",
                "telemetry detail: off | counters | phases "
                "(default phases when --trace-out is set)",
                "");
}

/// Install the telemetry sink requested by --trace-out/--trace-level.
/// Call once, after parse(). Without --trace-out tracing stays off (the
/// null sink), so instrumented hot paths cost nothing.
inline void configure_tracing(const Args& args) {
  const std::string out = args.get("trace-out");
  const std::string level_name = args.get("trace-level");
  if (out.empty() && level_name.empty()) return;
  const TraceLevel level = level_name.empty()
                               ? TraceLevel::kPhases
                               : parse_trace_level(level_name);
  std::unique_ptr<TraceSink> sink;
  if (!out.empty() && level != TraceLevel::kOff) {
    sink = std::make_unique<JsonlTraceSink>(out);
    std::printf("telemetry: %s records -> %s\n", trace_level_name(level),
                out.c_str());
  }
  Telemetry::instance().configure(std::move(sink), level);
}

}  // namespace megh::bench
