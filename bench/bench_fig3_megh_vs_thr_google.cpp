// Figure 3 reproduction: Megh vs THR-MMT on Google Cluster — same four
// panels as Figure 2 on the task-structured workload.
//
// Paper shape: Megh converges in ~100 steps (THR-MMT ~300); Megh keeps
// *more* hosts active yet incurs the lower per-step cost; ~97x fewer
// migrations; 1.48x faster decisions.
#include <cstdio>

#include "bench_common.hpp"
#include "baselines/mmt_policy.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "metrics/convergence.hpp"
#include "metrics/running_stats.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "PM count (--full = 500)", "100");
  args.add_flag("vms", "VM count (--full = 2000)", "300");
  args.add_flag("steps", "steps (--full = 2016)", "576");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int hosts = full ? 500 : static_cast<int>(args.get_int("hosts"));
  const int vms = full ? 2000 : static_cast<int>(args.get_int("vms"));
  const int steps = full ? 2016 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Figure 3 — Megh vs THR-MMT on Google Cluster (per-step series)",
      "Megh converges ~100 steps vs ~300; fewer migrations; lower cost "
      "while keeping more hosts active");

  const Scenario scenario = make_google_scenario(hosts, vms, steps, seed);
  std::vector<ExperimentResult> results;
  {
    auto thr = make_thr_mmt(0.7, seed);
    ExperimentOptions options;
    results.push_back(run_experiment(scenario, *thr, options));
  }
  {
    MeghConfig config;
    config.seed = seed;
    MeghPolicy megh(config);
    ExperimentOptions options;
    options.max_migration_fraction = 0.02;
    results.push_back(run_experiment(scenario, megh, options));
  }
  write_series_csvs(results, "fig3");

  std::printf("\npanel summaries (%d PMs, %d VMs, %d steps):\n", hosts, vms,
              steps);
  for (const auto& r : results) {
    const auto cost = r.sim.series("step_cost");
    const auto conv = convergence_step(cost);
    RunningStats tail;
    const int from = conv.value_or(static_cast<int>(cost.size()) / 2);
    for (std::size_t i = static_cast<std::size_t>(from); i < cost.size(); ++i) {
      tail.add(cost[i]);
    }
    std::printf("  %-8s (a) converges at %s, stable cost %.3f ± %.3f USD/step\n",
                r.policy.c_str(),
                conv ? std::to_string(*conv).c_str() : "never", tail.mean(),
                tail.stddev());
    std::printf("           (b) total migrations %lld  (c) mean active hosts "
                "%.1f  (d) exec %.3f ms/step\n",
                r.sim.totals.migrations, r.sim.totals.mean_active_hosts,
                r.sim.totals.mean_exec_ms);
  }

  std::printf("\nshape checks:\n");
  std::printf("  Megh migrations << THR-MMT: %s\n",
              results[1].sim.totals.migrations * 5 <
                      results[0].sim.totals.migrations
                  ? "PASS"
                  : "FAIL");
  std::printf("  Megh keeps more hosts active (paper's counter-intuitive "
              "Google finding): %s (%.1f vs %.1f)\n",
              results[1].sim.totals.mean_active_hosts >
                      results[0].sim.totals.mean_active_hosts
                  ? "PASS"
                  : "FAIL",
              results[1].sim.totals.mean_active_hosts,
              results[0].sim.totals.mean_active_hosts);
  std::printf("wrote fig3_THR-MMT.csv / fig3_Megh.csv under %s\n",
              bench_output_dir().c_str());
  return 0;
}
