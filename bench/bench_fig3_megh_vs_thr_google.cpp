// Figure 3 reproduction: Megh vs THR-MMT on Google Cluster — same four
// panels as Figure 2 on the task-structured workload.
//
// Paper shape: Megh converges in ~100 steps (THR-MMT ~300); Megh keeps
// *more* hosts active yet incurs the lower per-step cost; ~97x fewer
// migrations; 1.48x faster decisions.
#include "baselines/mmt_policy.hpp"
#include "bench_panels.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"

namespace megh {
namespace {

ExperimentSpec fig3_spec() {
  ExperimentSpec spec;
  spec.name = "fig3";
  spec.paper_ref = "Figure 3";
  spec.title = "Figure 3 — Megh vs THR-MMT on Google Cluster (per-step series)";
  spec.paper_claim =
      "Megh converges ~100 steps vs ~300; fewer migrations; lower cost "
      "while keeping more hosts active";
  spec.order = 50;
  spec.params = {
      {"hosts", 100, 500, 20, "PM count"},
      {"vms", 300, 2000, 50, "VM count"},
      {"steps", 576, 2016, 60, "5-minute steps"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    ExperimentPlan plan;
    plan.scenarios.push_back(make_google_scenario(
        scale.get_int("hosts"), scale.get_int("vms"), scale.get_int("steps"),
        seed));
    {
      CellSpec thr;
      thr.label = "THR-MMT";
      thr.rng_stream = seed;
      thr.make = [seed] { return make_thr_mmt(0.7, seed); };
      plan.cells.push_back(std::move(thr));
    }
    {
      CellSpec megh;
      megh.label = "Megh";
      megh.rng_stream = seed;
      megh.make = [seed] {
        MeghConfig config;
        config.seed = seed;
        return std::make_unique<MeghPolicy>(config);
      };
      megh.options.max_migration_fraction = 0.02;
      plan.cells.push_back(std::move(megh));
    }
    return plan;
  };
  spec.report.series_csv = "fig3";
  spec.post = [](const ExperimentPlan&, ExperimentOutput& output) {
    bench::print_panel_summaries(output);
  };
  spec.checks = {
      {.description = "Megh migrations << THR-MMT (>5x fewer)",
       .metric = "migrations",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kLess,
       .rhs_scale = 0.2},
      {.description =
           "Megh keeps more hosts active (paper's counter-intuitive "
           "Google finding)",
       .metric = "mean_active_hosts",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kGreater},
  };
  return spec;
}

const ExperimentRegistrar registrar(fig3_spec());

}  // namespace
}  // namespace megh
