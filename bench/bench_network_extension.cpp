// Extension experiment (paper Sec. 7 future work, not a paper figure):
// live migration on an oversubscribed fat-tree fabric.
//
// Three Megh runs on the same PlanetLab-like scenario:
//   flat-1G    — the paper's flat network (baseline);
//   oblivious  — fat-tree attached, Megh ignores the topology and pays the
//                full cross-pod copy penalty;
//   pod-aware  — Megh's candidate generator prefers in-pod targets.
// Plus THR-MMT on the same fabric (it is topology-oblivious by design).
//
// Expected shape: oblivious ≫ flat in SLA cost; pod-aware claws most of the
// penalty back by keeping migrations inside pods.
#include <cstdio>

#include "bench_common.hpp"
#include "baselines/mmt_policy.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "PM count (--full = 432, a k=12 fat tree)", "128");
  args.add_flag("vms", "VM count (--full = 600)", "192");
  args.add_flag("steps", "steps (--full = 2016)", "576");
  args.add_flag("oversubscription", "fabric oversubscription", "4");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int hosts = full ? 432 : static_cast<int>(args.get_int("hosts"));
  const int vms = full ? 600 : static_cast<int>(args.get_int("vms"));
  const int steps = full ? 2016 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  NetworkLinkConfig links;
  links.oversubscription = args.get_double("oversubscription");
  const auto fabric = std::make_shared<FatTreeTopology>(
      FatTreeTopology::for_hosts(hosts, links));

  bench::print_banner(
      "Extension — fat-tree-aware live migration",
      "cross-pod copies on an oversubscribed fabric cost downtime; a pod-"
      "aware candidate generator should recover most of the penalty");
  std::printf("fabric: k = %d, %gx oversubscribed; cross-pod copy is %.0fx "
              "slower than same-edge\n",
              fabric->k(), links.oversubscription,
              links.oversubscription * links.oversubscription);

  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, seed);
  std::vector<ExperimentResult> results;
  const auto run_megh = [&](const char* label, bool with_fabric, bool aware) {
    MeghConfig config;
    config.seed = seed;
    config.candidates.network_aware = aware;
    MeghPolicy megh(config);
    ExperimentOptions options;
    options.max_migration_fraction = 0.02;
    if (with_fabric) options.network = fabric;
    auto r = run_experiment(scenario, megh, options);
    r.policy = label;
    std::printf("  %-16s cost %.1f USD, %lld migrations (%lld cross-pod)\n",
                label, r.sim.totals.total_cost_usd, r.sim.totals.migrations,
                r.sim.totals.cross_pod_migrations);
    results.push_back(std::move(r));
  };
  run_megh("Megh/flat-1G", false, true);
  run_megh("Megh/oblivious", true, false);
  run_megh("Megh/pod-aware", true, true);
  {
    auto thr = make_thr_mmt(0.7, seed);
    ExperimentOptions options;
    options.network = fabric;
    auto r = run_experiment(scenario, *thr, options);
    r.policy = "THR-MMT/fabric";
    std::printf("  %-16s cost %.1f USD, %lld migrations (%lld cross-pod)\n",
                r.policy.c_str(), r.sim.totals.total_cost_usd,
                r.sim.totals.migrations, r.sim.totals.cross_pod_migrations);
    results.push_back(std::move(r));
  }

  print_performance_table("Fat-tree extension", results, "network_extension");

  const double flat = results[0].sim.totals.total_cost_usd;
  const double oblivious = results[1].sim.totals.total_cost_usd;
  const double aware = results[2].sim.totals.total_cost_usd;
  std::printf("\nshape checks:\n");
  std::printf("  fabric penalty exists (oblivious > flat): %s (%.1f vs %.1f)\n",
              oblivious > flat ? "PASS" : "FAIL", oblivious, flat);
  std::printf("  pod-awareness recovers cost (aware < oblivious): %s "
              "(%.1f vs %.1f, %.0f%% of the penalty recovered)\n",
              aware < oblivious ? "PASS" : "FAIL", aware, oblivious,
              oblivious - flat > 0
                  ? 100.0 * (oblivious - aware) / (oblivious - flat)
                  : 0.0);
  const double aware_crosspod_frac =
      results[2].sim.totals.migrations > 0
          ? static_cast<double>(results[2].sim.totals.cross_pod_migrations) /
                results[2].sim.totals.migrations
          : 0.0;
  const double oblivious_crosspod_frac =
      results[1].sim.totals.migrations > 0
          ? static_cast<double>(results[1].sim.totals.cross_pod_migrations) /
                results[1].sim.totals.migrations
          : 0.0;
  std::printf("  cross-pod fraction drops: %s (%.0f%% -> %.0f%%)\n",
              aware_crosspod_frac < oblivious_crosspod_frac ? "PASS" : "FAIL",
              100 * oblivious_crosspod_frac, 100 * aware_crosspod_frac);
  return 0;
}
