// Extension experiment (paper Sec. 7 future work, not a paper figure):
// live migration on an oversubscribed fat-tree fabric.
//
// Four cells on the same PlanetLab-like scenario:
//   Megh/flat-1G    — the paper's flat network (baseline);
//   Megh/oblivious  — fat-tree attached, Megh ignores the topology and pays
//                     the full cross-pod copy penalty;
//   Megh/pod-aware  — Megh's candidate generator prefers in-pod targets;
//   THR-MMT/fabric  — THR-MMT on the fabric (topology-oblivious by design).
//
// Expected shape: oblivious ≫ flat in SLA cost; pod-aware claws most of the
// penalty back by keeping migrations inside pods.
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/mmt_policy.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"
#include "harness/report.hpp"

namespace megh {
namespace {

double total_cost(const ExperimentOutput& output, const std::string& label) {
  const CellResult* cell = output.find(label);
  return cell ? cell->result.sim.totals.total_cost_usd : 0.0;
}

double cross_pod_fraction(const ExperimentOutput& output,
                          const std::string& label) {
  const SimulationTotals& t = output.find(label)->result.sim.totals;
  return t.migrations > 0
             ? static_cast<double>(t.cross_pod_migrations) / t.migrations
             : 0.0;
}

ExperimentSpec network_spec() {
  ExperimentSpec spec;
  spec.name = "network";
  spec.paper_ref = "—";
  spec.title = "Extension — fat-tree-aware live migration";
  spec.paper_claim =
      "cross-pod copies on an oversubscribed fabric cost downtime; a pod-"
      "aware candidate generator should recover most of the penalty";
  spec.order = 130;
  spec.params = {
      {"hosts", 128, 432, 48, "PM count (full: a k=12 fat tree)"},
      {"vms", 192, 600, 72, "VM count"},
      {"steps", 576, 2016, 60, "5-minute steps"},
      {"oversubscription", 4, 4, 4, "fabric oversubscription"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    const int hosts = scale.get_int("hosts");
    NetworkLinkConfig links;
    links.oversubscription = scale.get("oversubscription");
    const auto fabric = std::make_shared<FatTreeTopology>(
        FatTreeTopology::for_hosts(hosts, links));

    ExperimentPlan plan;
    plan.scenarios.push_back(make_planetlab_scenario(
        hosts, scale.get_int("vms"), scale.get_int("steps"), seed));

    const auto megh_cell = [&](const char* label, bool with_fabric,
                               bool aware) {
      CellSpec cell;
      cell.label = label;
      cell.rng_stream = seed;
      cell.make = [seed, aware] {
        MeghConfig config;
        config.seed = seed;
        config.candidates.network_aware = aware;
        return std::make_unique<MeghPolicy>(config);
      };
      cell.options.max_migration_fraction = 0.02;
      if (with_fabric) cell.options.network = fabric;
      plan.cells.push_back(std::move(cell));
    };
    megh_cell("Megh/flat-1G", false, true);
    megh_cell("Megh/oblivious", true, false);
    megh_cell("Megh/pod-aware", true, true);
    {
      CellSpec thr;
      thr.label = "THR-MMT/fabric";
      thr.rng_stream = seed;
      thr.make = [seed] { return make_thr_mmt(0.7, seed); };
      thr.options.network = fabric;
      plan.cells.push_back(std::move(thr));
    }
    return plan;
  };
  spec.report.summary_csv = "network_extension";
  spec.post = [](const ExperimentPlan& plan, ExperimentOutput& output) {
    const auto& fabric = plan.cells.back().options.network;
    std::printf("\nfabric: k = %d, %gx oversubscribed; cross-pod copy is "
                "%.0fx slower than same-edge\n",
                fabric->k(), output.scale.get("oversubscription"),
                output.scale.get("oversubscription") *
                    output.scale.get("oversubscription"));
    for (const CellResult& cell : output.cells) {
      std::printf("  %-16s cost %.1f USD, %lld migrations (%lld cross-pod)\n",
                  cell.label.c_str(), cell.result.sim.totals.total_cost_usd,
                  cell.result.sim.totals.migrations,
                  cell.result.sim.totals.cross_pod_migrations);
    }
  };
  spec.checks = {
      {.description = "fabric penalty exists (oblivious > flat)",
       .metric = "total_cost_usd",
       .lhs = "Megh/oblivious",
       .rhs = "Megh/flat-1G",
       .relation = CheckRelation::kGreater},
      {.description = "pod-awareness recovers cost (aware < oblivious)",
       .custom =
           [](const ExperimentOutput& output) {
             const double flat = total_cost(output, "Megh/flat-1G");
             const double oblivious = total_cost(output, "Megh/oblivious");
             const double aware = total_cost(output, "Megh/pod-aware");
             CheckOutcome outcome;
             outcome.status = aware < oblivious
                                  ? CheckOutcome::Status::kPass
                                  : CheckOutcome::Status::kFail;
             outcome.detail = strf(
                 "%.1f vs %.1f, %.0f%% of the penalty recovered", aware,
                 oblivious,
                 oblivious - flat > 0
                     ? 100.0 * (oblivious - aware) / (oblivious - flat)
                     : 0.0);
             return outcome;
           }},
      {.description = "cross-pod fraction drops under pod-awareness",
       .custom =
           [](const ExperimentOutput& output) {
             const double oblivious =
                 cross_pod_fraction(output, "Megh/oblivious");
             const double aware =
                 cross_pod_fraction(output, "Megh/pod-aware");
             CheckOutcome outcome;
             outcome.status = aware < oblivious
                                  ? CheckOutcome::Status::kPass
                                  : CheckOutcome::Status::kFail;
             outcome.detail = strf("%.0f%% -> %.0f%%", 100 * oblivious,
                                   100 * aware);
             return outcome;
           }},
  };
  return spec;
}

const ExperimentRegistrar registrar(network_spec());

}  // namespace
}  // namespace megh
