// Figure 8 reproduction: sensitivity of Megh's per-step cost to the
// exploration parameters — (a) Temp₀ swept (paper: 0.5..10 in 0.5 steps
// with ε = 0.001) and (b) ε swept (paper: 30 log-spaced values in
// [1e-3, 1] with Temp₀ = 1), 25 runs per value, reported as boxplots.
//
// Paper shape: median per-step cost dips around Temp₀ ≈ 3 and rises for
// larger Temp₀ (too much exploration); the ε sweep is more sporadic with a
// local optimum near ε = 0.001.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/report.hpp"
#include "metrics/boxplot.hpp"

using namespace megh;

namespace {

BoxplotStats sweep_point(const Scenario& scenario, double temp0,
                         double epsilon, int repeats, std::uint64_t seed) {
  std::vector<int> reps(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) reps[static_cast<std::size_t>(i)] = i;
  // Repeats are independent seeded runs — fan them out (Fig. 8 at paper
  // scale is 50 × 25 simulations).
  const auto runs = parallel_map(reps, [&](int rep) {
    MeghConfig config;
    config.temp0 = temp0;
    config.epsilon = epsilon;
    config.seed = seed + static_cast<unsigned>(rep);
    MeghPolicy megh(config);
    ExperimentOptions options;
    options.max_migration_fraction = 0.02;
    options.placement_seed = seed + 31 + static_cast<unsigned>(rep);
    const ExperimentResult r = run_experiment(scenario, megh, options);
    std::vector<double> costs;
    costs.reserve(r.sim.steps.size());
    for (const auto& step : r.sim.steps) costs.push_back(step.step_cost_usd);
    return costs;
  });
  std::vector<double> per_step_costs;
  for (const auto& run : runs) {
    per_step_costs.insert(per_step_costs.end(), run.begin(), run.end());
  }
  return boxplot_stats(per_step_costs);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "PM count", "60");
  args.add_flag("vms", "VM count", "90");
  args.add_flag("steps", "steps per run", "192");
  args.add_flag("repeats", "runs per parameter value (--full = 25)", "3");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int hosts = static_cast<int>(args.get_int("hosts"));
  const int vms = static_cast<int>(args.get_int("vms"));
  const int steps = static_cast<int>(args.get_int("steps"));
  const int repeats = full ? 25 : static_cast<int>(args.get_int("repeats"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Figure 8 — sensitivity of per-step cost to Temp0 and epsilon",
      "median cost dips near Temp0 = 3 and rises with over-exploration; "
      "the epsilon sweep is sporadic with a local optimum near 1e-3");

  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, seed);

  // --- (a) Temp0 sweep at epsilon = 0.001 ---
  const std::vector<double> temps =
      full ? [] {
        std::vector<double> t;
        for (double v = 0.5; v <= 10.0 + 1e-9; v += 0.5) t.push_back(v);
        return t;
      }()
           : std::vector<double>{0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0};

  CsvWriter csv_a(bench_output_dir() / "fig8a_temp0_sensitivity.csv");
  csv_a.header({"temp0", "p5", "q1", "median", "q3", "p95", "mean"});
  std::printf("\n(a) Temp0 sweep (epsilon = 0.001, %d repeats):\n", repeats);
  std::vector<std::pair<double, double>> temp_medians;
  for (double t : temps) {
    const BoxplotStats b = sweep_point(scenario, t, 0.001, repeats, seed);
    csv_a.row({t, b.p5, b.q1, b.median, b.q3, b.p95, b.mean});
    temp_medians.emplace_back(t, b.median);
    std::printf("  Temp0 %-5.1f median %.4f  IQR [%.4f, %.4f]\n", t, b.median,
                b.q1, b.q3);
  }

  // --- (b) epsilon sweep at Temp0 = 1 ---
  const int eps_points = full ? 30 : 7;
  std::vector<double> epsilons;
  for (int i = 0; i < eps_points; ++i) {
    const double exponent = -3.0 + 3.0 * i / (eps_points - 1);
    epsilons.push_back(std::pow(10.0, exponent));
  }
  CsvWriter csv_b(bench_output_dir() / "fig8b_epsilon_sensitivity.csv");
  csv_b.header({"epsilon", "p5", "q1", "median", "q3", "p95", "mean"});
  std::printf("\n(b) epsilon sweep (Temp0 = 1, %d repeats):\n", repeats);
  for (double e : epsilons) {
    const BoxplotStats b = sweep_point(scenario, 1.0, e, repeats, seed + 777);
    csv_b.row({e, b.p5, b.q1, b.median, b.q3, b.p95, b.mean});
    std::printf("  epsilon %-8.4f median %.4f  IQR [%.4f, %.4f]\n", e,
                b.median, b.q1, b.q3);
  }

  // Shape note: with the advantage-normalized critic the sweep is flatter
  // than the paper's, but extreme over-exploration must not be best.
  double best_temp = temp_medians.front().first;
  double best_median = temp_medians.front().second;
  for (const auto& [t, m] : temp_medians) {
    if (m < best_median) {
      best_median = m;
      best_temp = t;
    }
  }
  std::printf("\nbest Temp0 by median cost: %.1f (paper: 3.0)\n", best_temp);
  std::printf("wrote fig8a/fig8b CSVs under %s\n", bench_output_dir().c_str());
  return 0;
}
