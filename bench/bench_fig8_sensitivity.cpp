// Figure 8 reproduction: sensitivity of Megh's per-step cost to the
// exploration parameters — (a) Temp₀ swept (paper: 0.5..10 in 0.5 steps
// with ε = 0.001) and (b) ε swept (paper: 30 log-spaced values in
// [1e-3, 1] with Temp₀ = 1), 25 runs per value, reported as boxplots.
//
// Paper shape: median per-step cost dips around Temp₀ ≈ 3 and rises for
// larger Temp₀ (too much exploration); the ε sweep is more sporadic with a
// local optimum near ε = 0.001.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"
#include "harness/report.hpp"
#include "metrics/boxplot.hpp"

namespace megh {
namespace {

std::vector<double> fig8_temps(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return {1.0, 3.0, 10.0};
    case Scale::kReduced:
      return {0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0};
    case Scale::kFull: {
      std::vector<double> t;
      for (double v = 0.5; v <= 10.0 + 1e-9; v += 0.5) t.push_back(v);
      return t;
    }
  }
  return {};
}

std::vector<double> fig8_epsilons(Scale scale) {
  const int points = scale == Scale::kFull     ? 30
                     : scale == Scale::kSmoke ? 4
                                              : 7;
  std::vector<double> epsilons;
  for (int i = 0; i < points; ++i) {
    const double exponent = -3.0 + 3.0 * i / (points - 1);
    epsilons.push_back(std::pow(10.0, exponent));
  }
  return epsilons;
}

/// Concatenated per-step costs across the repeats of one sweep group,
/// summarized as boxplot stats.
BoxplotStats group_boxplot(const ExperimentOutput& output,
                           const std::string& group) {
  std::vector<double> per_step_costs;
  for (const CellResult& cell : output.cells) {
    if (cell.group != group) continue;
    for (const auto& step : cell.result.sim.steps) {
      per_step_costs.push_back(step.step_cost_usd);
    }
  }
  return boxplot_stats(per_step_costs);
}

void add_sweep_cells(ExperimentPlan& plan, const std::string& group,
                     double temp0, double epsilon, int repeats,
                     std::uint64_t seed) {
  for (int rep = 0; rep < repeats; ++rep) {
    const std::uint64_t run_seed = seed + static_cast<unsigned>(rep);
    CellSpec cell;
    cell.label = "Megh";
    cell.group = group;
    cell.rng_stream = run_seed;
    cell.params = {{"temp0", temp0},
                   {"epsilon", epsilon},
                   {"rep", static_cast<double>(rep)}};
    cell.make = [temp0, epsilon, run_seed] {
      MeghConfig config;
      config.temp0 = temp0;
      config.epsilon = epsilon;
      config.seed = run_seed;
      return std::make_unique<MeghPolicy>(config);
    };
    cell.options.max_migration_fraction = 0.02;
    cell.options.placement_seed = seed + 31 + static_cast<unsigned>(rep);
    plan.cells.push_back(std::move(cell));
  }
}

ExperimentSpec fig8_spec() {
  ExperimentSpec spec;
  spec.name = "fig8";
  spec.paper_ref = "Figure 8";
  spec.title = "Figure 8 — sensitivity of per-step cost to Temp0 and epsilon";
  spec.paper_claim =
      "median cost dips near Temp0 = 3 and rises with over-exploration; "
      "the epsilon sweep is sporadic with a local optimum near 1e-3";
  spec.order = 100;
  spec.params = {
      {"hosts", 60, 60, 24, "PM count"},
      {"vms", 90, 90, 36, "VM count"},
      {"steps", 192, 192, 48, "steps per run"},
      {"repeats", 3, 25, 2, "runs per parameter value"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    const int repeats = scale.get_int("repeats");
    ExperimentPlan plan;
    plan.scenarios.push_back(make_planetlab_scenario(
        scale.get_int("hosts"), scale.get_int("vms"), scale.get_int("steps"),
        seed));
    // (a) Temp0 sweep at epsilon = 0.001.
    for (double t : fig8_temps(scale.scale)) {
      add_sweep_cells(plan, strf("temp0=%g", t), t, 0.001, repeats, seed);
    }
    // (b) epsilon sweep at Temp0 = 1.
    for (double e : fig8_epsilons(scale.scale)) {
      add_sweep_cells(plan, strf("eps=%g", e), 1.0, e, repeats, seed + 777);
    }
    return plan;
  };
  spec.post = [](const ExperimentPlan&, ExperimentOutput& output) {
    const int repeats =
        static_cast<int>(output.scale.get("repeats"));

    const auto path_a = bench_output_dir() / "fig8a_temp0_sensitivity.csv";
    CsvWriter csv_a(path_a);
    csv_a.header({"temp0", "p5", "q1", "median", "q3", "p95", "mean"});
    std::printf("\n(a) Temp0 sweep (epsilon = 0.001, %d repeats):\n",
                repeats);
    for (double t : fig8_temps(output.scale.scale)) {
      const BoxplotStats b = group_boxplot(output, strf("temp0=%g", t));
      csv_a.row({t, b.p5, b.q1, b.median, b.q3, b.p95, b.mean});
      std::printf("  Temp0 %-5.1f median %.4f  IQR [%.4f, %.4f]\n", t,
                  b.median, b.q1, b.q3);
    }

    const auto path_b = bench_output_dir() / "fig8b_epsilon_sensitivity.csv";
    CsvWriter csv_b(path_b);
    csv_b.header({"epsilon", "p5", "q1", "median", "q3", "p95", "mean"});
    std::printf("\n(b) epsilon sweep (Temp0 = 1, %d repeats):\n", repeats);
    for (double e : fig8_epsilons(output.scale.scale)) {
      const BoxplotStats b = group_boxplot(output, strf("eps=%g", e));
      csv_b.row({e, b.p5, b.q1, b.median, b.q3, b.p95, b.mean});
      std::printf("  epsilon %-8.4f median %.4f  IQR [%.4f, %.4f]\n", e,
                  b.median, b.q1, b.q3);
    }
    record_artifact(output, path_a.string());
    record_artifact(output, path_b.string());
  };
  spec.checks = {
      // With the advantage-normalized critic the sweep is flatter than the
      // paper's, but extreme over-exploration must not be best.
      {.description = "max Temp0 (over-exploration) is not the best setting",
       .custom =
           [](const ExperimentOutput& output) {
             const auto temps = fig8_temps(output.scale.scale);
             double best_temp = temps.front();
             double best_median =
                 group_boxplot(output, strf("temp0=%g", temps.front()))
                     .median;
             for (double t : temps) {
               const double m =
                   group_boxplot(output, strf("temp0=%g", t)).median;
               if (m < best_median) {
                 best_median = m;
                 best_temp = t;
               }
             }
             CheckOutcome outcome;
             outcome.status = best_temp < temps.back()
                                  ? CheckOutcome::Status::kPass
                                  : CheckOutcome::Status::kFail;
             outcome.detail =
                 strf("best Temp0 by median cost: %.1f (paper: 3.0)",
                      best_temp);
             return outcome;
           }},
  };
  return spec;
}

const ExperimentRegistrar registrar(fig8_spec());

}  // namespace
}  // namespace megh
