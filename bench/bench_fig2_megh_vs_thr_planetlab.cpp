// Figure 2 reproduction: Megh vs THR-MMT on PlanetLab — the four panels
// (a) per-step operation cost, (b) cumulative #migrations, (c) active
// hosts, (d) execution time, as per-step series.
//
// Paper shape: Megh's per-step cost converges in ~100 steps with low
// variance (THR-MMT ~600 steps, high variance even afterwards); cumulative
// migrations grow ~140x slower for Megh; Megh runs 1.41x faster per step.
#include "baselines/mmt_policy.hpp"
#include "bench_panels.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"

namespace megh {
namespace {

ExperimentSpec fig2_spec() {
  ExperimentSpec spec;
  spec.name = "fig2";
  spec.paper_ref = "Figure 2";
  spec.title = "Figure 2 — Megh vs THR-MMT on PlanetLab (per-step series)";
  spec.paper_claim =
      "Megh converges in ~100 steps with less variance; THR-MMT needs ~600 "
      "and stays unstable; Megh migrates ~140x less and decides faster";
  spec.order = 40;
  spec.params = {
      {"hosts", 120, 800, 24, "PM count"},
      {"vms", 160, 1052, 36, "VM count"},
      {"steps", 576, 2016, 60, "5-minute steps"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    ExperimentPlan plan;
    plan.scenarios.push_back(make_planetlab_scenario(
        scale.get_int("hosts"), scale.get_int("vms"), scale.get_int("steps"),
        seed));
    {
      CellSpec thr;
      thr.label = "THR-MMT";
      thr.rng_stream = seed;
      thr.make = [seed] { return make_thr_mmt(0.7, seed); };
      plan.cells.push_back(std::move(thr));
    }
    {
      CellSpec megh;
      megh.label = "Megh";
      megh.rng_stream = seed;
      megh.make = [seed] {
        MeghConfig config;
        config.seed = seed;
        return std::make_unique<MeghPolicy>(config);
      };
      megh.options.max_migration_fraction = 0.02;
      plan.cells.push_back(std::move(megh));
    }
    return plan;
  };
  spec.report.series_csv = "fig2";
  spec.post = [](const ExperimentPlan&, ExperimentOutput& output) {
    bench::print_panel_summaries(output);
  };
  spec.checks = {
      // THR-MMT's cost is "stable" from step 0 — at a high level (it churns
      // at a steady rate). The meaningful Fig-2(a) comparison is that Megh
      // reaches a stable level too, and that level is lower.
      {.description = "Megh settles at a lower stable cost than THR-MMT",
       .metric = "stable_cost",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kLess},
      {.description = "Megh cumulative migrations below THR-MMT at every step",
       .custom =
           [](const ExperimentOutput& output) {
             return bench::cumulative_migrations_below(output, "Megh",
                                                       "THR-MMT");
           }},
  };
  return spec;
}

const ExperimentRegistrar registrar(fig2_spec());

}  // namespace
}  // namespace megh
