// Figure 2 reproduction: Megh vs THR-MMT on PlanetLab — the four panels
// (a) per-step operation cost, (b) cumulative #migrations, (c) active
// hosts, (d) execution time, as per-step series.
//
// Paper shape: Megh's per-step cost converges in ~100 steps with low
// variance (THR-MMT ~600 steps, high variance even afterwards); cumulative
// migrations grow ~140x slower for Megh; Megh runs 1.41x faster per step.
#include <cstdio>

#include "bench_common.hpp"
#include "baselines/mmt_policy.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "metrics/convergence.hpp"
#include "metrics/running_stats.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "PM count (--full = 800)", "120");
  args.add_flag("vms", "VM count (--full = 1052)", "160");
  args.add_flag("steps", "steps (--full = 2016)", "576");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int hosts = full ? 800 : static_cast<int>(args.get_int("hosts"));
  const int vms = full ? 1052 : static_cast<int>(args.get_int("vms"));
  const int steps = full ? 2016 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Figure 2 — Megh vs THR-MMT on PlanetLab (per-step series)",
      "Megh converges in ~100 steps with less variance; THR-MMT needs ~600 "
      "and stays unstable; Megh migrates ~140x less and decides faster");

  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, seed);
  std::vector<ExperimentResult> results;
  {
    auto thr = make_thr_mmt(0.7, seed);
    ExperimentOptions options;
    results.push_back(run_experiment(scenario, *thr, options));
  }
  {
    MeghConfig config;
    config.seed = seed;
    MeghPolicy megh(config);
    ExperimentOptions options;
    options.max_migration_fraction = 0.02;
    results.push_back(run_experiment(scenario, megh, options));
  }
  write_series_csvs(results, "fig2");

  std::printf("\npanel summaries (%d PMs, %d VMs, %d steps):\n", hosts, vms,
              steps);
  for (const auto& r : results) {
    const auto cost = r.sim.series("step_cost");
    const auto conv = convergence_step(cost);
    RunningStats tail;
    const int from = conv.value_or(static_cast<int>(cost.size()) / 2);
    for (std::size_t i = static_cast<std::size_t>(from); i < cost.size(); ++i) {
      tail.add(cost[i]);
    }
    std::printf("  %-8s (a) converges at %s, stable cost %.3f ± %.3f USD/step\n",
                r.policy.c_str(),
                conv ? std::to_string(*conv).c_str() : "never",
                tail.mean(), tail.stddev());
    std::printf("           (b) total migrations %lld  (c) mean active hosts "
                "%.1f  (d) exec %.3f ms/step\n",
                r.sim.totals.migrations, r.sim.totals.mean_active_hosts,
                r.sim.totals.mean_exec_ms);
  }

  // THR-MMT's cost is "stable" from step 0 — at a high level (it churns at
  // a steady rate). The meaningful Fig-2(a) comparison is that Megh reaches
  // a stable level too, and that level is lower.
  const auto megh_series = results[1].sim.series("step_cost");
  const auto thr_series = results[0].sim.series("step_cost");
  const auto megh_conv = convergence_step(megh_series);
  const auto thr_conv = convergence_step(thr_series);
  std::printf("\nshape checks:\n");
  // When the CV detector does not fire (per-step SLA spikes keep the
  // relative variance high at reduced VM counts), fall back to the
  // second-half mean — the level comparison is the discriminating claim.
  const double megh_stable =
      megh_conv ? tail_mean(megh_series, *megh_conv)
                : tail_mean(megh_series,
                            static_cast<int>(megh_series.size()) / 2);
  const double thr_stable =
      thr_conv ? tail_mean(thr_series, *thr_conv)
               : tail_mean(thr_series, static_cast<int>(thr_series.size()) / 2);
  std::printf("  Megh settles at a lower stable cost than THR-MMT: %s "
              "(%.3f vs %.3f USD/step)\n",
              megh_stable < thr_stable ? "PASS" : "FAIL", megh_stable,
              thr_stable);
  std::printf("  Megh cumulative migrations below THR-MMT at every step: ");
  double megh_cum = 0, thr_cum = 0;
  bool below = true;
  for (std::size_t i = 0; i < results[0].sim.steps.size(); ++i) {
    thr_cum += results[0].sim.steps[i].migrations;
    megh_cum += results[1].sim.steps[i].migrations;
    if (megh_cum > thr_cum && i > 10) below = false;
  }
  std::printf("%s\n", below ? "PASS" : "FAIL");
  std::printf("wrote fig2_THR-MMT.csv / fig2_Megh.csv under %s\n",
              bench_output_dir().c_str());
  return 0;
}
