// Figure 4 reproduction: Megh vs MadVM on a 100-PM / 150-VM subset of the
// PlanetLab workload over 3 days (the largest configuration MadVM scales
// to, Sec. 6.3). Panels: per-step cost, cumulative migrations, active
// hosts, execution time.
//
// Paper shape: Megh incurs 4.3% less cost per step, converges at ~100 steps
// (MadVM ~200), migrates 5.5x less, keeps ~21 hosts active (MadVM ~58), and
// runs ~1000x faster per step (7 ms vs 4143 ms) — MadVM's per-step time
// exceeds a VM's migration time, breaking the "live" in live migration.
#include <algorithm>

#include "baselines/madvm.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"

namespace megh {
namespace {

ExperimentSpec fig4_spec() {
  ExperimentSpec spec;
  spec.name = "fig4";
  spec.paper_ref = "Figure 4";
  spec.title = "Figure 4 — Megh vs MadVM on a PlanetLab subset";
  spec.paper_claim =
      "Megh: ~4.3% cheaper per step, 5.5x fewer migrations, fewer active "
      "hosts, ~1/1000 of MadVM's execution overhead";
  spec.order = 60;
  spec.params = {
      {"hosts", 60, 100, 20, "subset PM count"},
      {"vms", 90, 150, 30, "subset VM count"},
      {"steps", 288, 864, 48, "5-minute steps (paper: 3 days)"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    const int hosts = scale.get_int("hosts");
    const int vms = scale.get_int("vms");
    ExperimentPlan plan;
    const Scenario base =
        make_planetlab_scenario(std::max(hosts, 200), std::max(vms, 300),
                                scale.get_int("steps"), seed);
    plan.scenarios.push_back(subset_scenario(base, hosts, vms, seed + 1));
    for (const PolicyEntry& entry : rl_roster(seed)) {
      CellSpec cell;
      cell.label = entry.name;
      cell.rng_stream = seed;
      cell.make = entry.make;
      cell.options.placement = InitialPlacement::kRandom;  // paper: uniform
      cell.options.max_migration_fraction = entry.max_migration_fraction;
      plan.cells.push_back(std::move(cell));
    }
    return plan;
  };
  spec.report.summary_csv = "fig4_summary";
  spec.report.series_csv = "fig4";
  spec.report.convergence = true;
  spec.report.convergence_note =
      "convergence (paper: Megh ~100 steps, MadVM ~200):";
  spec.checks = {
      {.description = "Megh total cost <= MadVM",
       .metric = "total_cost_usd",
       .lhs = "Megh",
       .rhs = "MadVM",
       .relation = CheckRelation::kLessEq},
      {.description = "Megh migrations << MadVM (>2x fewer)",
       .metric = "migrations",
       .lhs = "Megh",
       .rhs = "MadVM",
       .relation = CheckRelation::kLess,
       .rhs_scale = 0.5},
      {.description = "Megh fewer active hosts",
       .metric = "mean_active_hosts",
       .lhs = "Megh",
       .rhs = "MadVM",
       .relation = CheckRelation::kLess},
      {.description = "Megh exec time far below MadVM (>5x)",
       .metric = "mean_exec_ms",
       .lhs = "Megh",
       .rhs = "MadVM",
       .relation = CheckRelation::kLess,
       .rhs_scale = 0.2},
  };
  return spec;
}

const ExperimentRegistrar registrar(fig4_spec());

}  // namespace
}  // namespace megh
