// Figure 6 reproduction: scalability of THR-MMT vs Megh — per-step
// execution time as the number of PMs (m) and VMs (n) grows, m, n ∈
// {100..800}, repeated over random subsets (paper: 25 repeats per cell).
//
// Paper shape: both grow with m and n, but Megh's curve is far flatter —
// at (800, 800) THR-MMT takes orders of magnitude longer per step while
// Megh stays in single-digit milliseconds.
//
// Exec time is the measurement here, so run this experiment with --jobs 1
// (timing-grade mode): concurrent cells contend for cores and inflate the
// wall-clock latencies.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/mmt_policy.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"
#include "harness/report.hpp"
#include "metrics/running_stats.hpp"

namespace megh {
namespace {

std::vector<int> fig6_sizes(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return {100, 200};
    case Scale::kReduced:
      return {100, 200, 400, 800};
    case Scale::kFull:
      return {100, 200, 300, 400, 500, 600, 700, 800};
  }
  return {};
}

/// Per-(size, algorithm) mean/std/max of mean_exec_ms over the repeats,
/// keyed in size order then THR-MMT before Megh (cell order).
std::vector<std::pair<std::pair<int, std::string>, RunningStats>>
aggregate_exec(const ExperimentOutput& output) {
  std::vector<std::pair<std::pair<int, std::string>, RunningStats>> agg;
  for (const CellResult& cell : output.cells) {
    const auto key = std::make_pair(
        static_cast<int>(cell.params.at("size")), cell.label);
    auto it = std::find_if(agg.begin(), agg.end(),
                           [&](const auto& e) { return e.first == key; });
    if (it == agg.end()) {
      agg.push_back({key, RunningStats{}});
      it = std::prev(agg.end());
    }
    it->second.add(cell.result.sim.totals.mean_exec_ms);
  }
  return agg;
}

ExperimentSpec fig6_spec() {
  ExperimentSpec spec;
  spec.name = "fig6";
  spec.paper_ref = "Figure 6";
  spec.title =
      "Figure 6 — scalability: per-step execution time vs m = n PMs/VMs";
  spec.paper_claim =
      "Megh's per-step time rises far more slowly than THR-MMT's as the "
      "data center grows (Sec. 6.4)";
  spec.order = 80;
  spec.params = {
      {"repeats", 3, 25, 2, "random subsets per cell"},
      {"steps", 30, 100, 10, "steps per run"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    const std::vector<int> sizes = fig6_sizes(scale.scale);
    const int repeats = scale.get_int("repeats");
    const int steps = scale.get_int("steps");
    const int max_size = sizes.back();

    ExperimentPlan plan;
    // One big base scenario; each cell samples a random sub-fleet from it.
    plan.scenarios.push_back(
        make_planetlab_scenario(max_size, max_size, steps, seed));
    for (int size : sizes) {
      const int cell_repeats = size == max_size ? 1 : repeats;
      for (int rep = 0; rep < cell_repeats; ++rep) {
        int scenario = 0;
        if (size != max_size) {
          plan.scenarios.push_back(subset_scenario(
              plan.scenarios[0], size, size,
              seed + 100 * static_cast<unsigned>(rep) +
                  static_cast<unsigned>(size)));
          scenario = static_cast<int>(plan.scenarios.size()) - 1;
        }
        const std::uint64_t cell_seed = seed + static_cast<unsigned>(rep);
        {
          CellSpec thr;
          thr.label = "THR-MMT";
          thr.group = strf("m=%d", size);
          thr.scenario = scenario;
          thr.rng_stream = cell_seed;
          thr.params = {{"size", static_cast<double>(size)},
                        {"rep", static_cast<double>(rep)}};
          thr.make = [cell_seed] { return make_thr_mmt(0.7, cell_seed); };
          plan.cells.push_back(std::move(thr));
        }
        {
          CellSpec megh;
          megh.label = "Megh";
          megh.group = strf("m=%d", size);
          megh.scenario = scenario;
          megh.rng_stream = cell_seed;
          megh.params = {{"size", static_cast<double>(size)},
                         {"rep", static_cast<double>(rep)}};
          megh.make = [cell_seed] {
            MeghConfig config;
            config.seed = cell_seed;
            return std::make_unique<MeghPolicy>(config);
          };
          megh.options.max_migration_fraction = 0.02;
          plan.cells.push_back(std::move(megh));
        }
      }
    }
    return plan;
  };
  spec.post = [](const ExperimentPlan&, ExperimentOutput& output) {
    const auto agg = aggregate_exec(output);
    const auto path = bench_output_dir() / "fig6_scalability.csv";
    CsvWriter csv(path);
    csv.header({"m_hosts", "n_vms", "algorithm", "mean_exec_ms",
                "std_exec_ms", "max_exec_ms"});

    std::vector<std::vector<std::string>> rows;
    std::map<int, std::pair<double, double>> by_size;  // size -> (thr, megh)
    for (const auto& [key, stats] : agg) {
      csv.row_str({std::to_string(key.first), std::to_string(key.first),
                   key.second, strf("%.4f", stats.mean()),
                   strf("%.4f", stats.stddev()), strf("%.4f", stats.max())});
      if (key.second == "THR-MMT") {
        by_size[key.first].first = stats.mean();
      } else {
        by_size[key.first].second = stats.mean();
      }
    }
    for (const auto& [size, ms] : by_size) {
      rows.push_back({std::to_string(size), strf("%.3f", ms.first),
                      strf("%.3f", ms.second),
                      strf("%.1fx", ms.second > 0 ? ms.first / ms.second
                                                  : 0.0)});
      std::printf("  m = n = %-4d  THR-MMT %.3f ms/step   Megh %.3f ms/step\n",
                  size, ms.first, ms.second);
    }
    print_table("Figure 6 — per-step execution time (ms)",
                {"m = n", "THR-MMT", "Megh", "THR/Megh"}, rows);
    record_artifact(output, path.string());
  };
  spec.checks = {
      // Megh's growth from smallest to largest cell must be slower than
      // THR-MMT's.
      {.description = "Megh scales flatter than THR-MMT",
       .custom =
           [](const ExperimentOutput& output) {
             std::map<int, std::pair<double, double>> by_size;
             for (const auto& [key, stats] : aggregate_exec(output)) {
               if (key.second == "THR-MMT") {
                 by_size[key.first].first = stats.mean();
               } else {
                 by_size[key.first].second = stats.mean();
               }
             }
             const auto& first = by_size.begin()->second;
             const auto& last = by_size.rbegin()->second;
             const double thr_growth =
                 first.first > 0 ? last.first / first.first : 0.0;
             const double megh_growth =
                 first.second > 0 ? last.second / first.second : 0.0;
             CheckOutcome outcome;
             outcome.status = megh_growth < thr_growth
                                  ? CheckOutcome::Status::kPass
                                  : CheckOutcome::Status::kFail;
             outcome.detail = strf("growth %.1fx vs %.1fx", megh_growth,
                                   thr_growth);
             return outcome;
           }},
  };
  return spec;
}

const ExperimentRegistrar registrar(fig6_spec());

}  // namespace
}  // namespace megh
