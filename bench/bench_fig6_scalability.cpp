// Figure 6 reproduction: scalability of THR-MMT vs Megh — per-step
// execution time as the number of PMs (m) and VMs (n) grows, m, n ∈
// {100..800}, repeated over random subsets (paper: 25 repeats per cell).
//
// Paper shape: both grow with m and n, but Megh's curve is far flatter —
// at (800, 800) THR-MMT takes orders of magnitude longer per step while
// Megh stays in single-digit milliseconds.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "baselines/mmt_policy.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/report.hpp"
#include "metrics/running_stats.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("repeats", "random subsets per cell (--full = 25)", "3");
  args.add_flag("steps", "steps per run (--full = 100)", "30");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const bool full = bench::full_scale(args);
  const int repeats = full ? 25 : static_cast<int>(args.get_int("repeats"));
  const int steps = full ? 100 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const std::vector<int> sizes =
      full ? std::vector<int>{100, 200, 300, 400, 500, 600, 700, 800}
           : std::vector<int>{100, 200, 400, 800};

  bench::print_banner(
      "Figure 6 — scalability: per-step execution time vs m = n PMs/VMs",
      "Megh's per-step time rises far more slowly than THR-MMT's as the "
      "data center grows (Sec. 6.4)");
  std::printf("m = n in {");
  for (int s : sizes) std::printf("%d ", s);
  std::printf("}, %d repeats, %d steps each%s\n\n", repeats, steps,
              full ? " (paper scale)" : " (reduced; --full for paper)");

  // One big base scenario; each cell samples random sub-fleets from it.
  const int max_size = sizes.back();
  const Scenario base =
      make_planetlab_scenario(max_size, max_size, steps, seed);

  CsvWriter csv(bench_output_dir() / "fig6_scalability.csv");
  csv.header({"m_hosts", "n_vms", "algorithm", "mean_exec_ms", "std_exec_ms",
              "max_exec_ms"});

  std::vector<std::vector<std::string>> rows;
  for (int size : sizes) {
    // Exec time is the measurement here, so each cell's repeats run
    // SEQUENTIALLY (concurrent simulations would contend for cores and
    // inflate the wall-clock latencies); only scenario construction for
    // the cell subsets is parallelized.
    const int cell_repeats = size == max_size ? 1 : repeats;
    std::vector<int> reps(static_cast<std::size_t>(cell_repeats));
    for (int i = 0; i < cell_repeats; ++i) reps[static_cast<std::size_t>(i)] = i;
    const auto cells = parallel_map(reps, [&](int rep) {
      return size == max_size
                 ? base
                 : subset_scenario(base, size, size,
                                   seed + 100 * static_cast<unsigned>(rep) +
                                       static_cast<unsigned>(size));
    });
    RunningStats thr_ms, megh_ms;
    for (int rep = 0; rep < cell_repeats; ++rep) {
      const Scenario& cell = cells[static_cast<std::size_t>(rep)];
      {
        auto thr = make_thr_mmt(0.7, seed + static_cast<unsigned>(rep));
        ExperimentOptions options;
        const ExperimentResult r = run_experiment(cell, *thr, options);
        thr_ms.add(r.sim.totals.mean_exec_ms);
      }
      {
        MeghConfig config;
        config.seed = seed + static_cast<unsigned>(rep);
        MeghPolicy megh(config);
        ExperimentOptions options;
        options.max_migration_fraction = 0.02;
        const ExperimentResult r = run_experiment(cell, megh, options);
        megh_ms.add(r.sim.totals.mean_exec_ms);
      }
    }
    csv.row_str({std::to_string(size), std::to_string(size), "THR-MMT",
                 strf("%.4f", thr_ms.mean()), strf("%.4f", thr_ms.stddev()),
                 strf("%.4f", thr_ms.max())});
    csv.row_str({std::to_string(size), std::to_string(size), "Megh",
                 strf("%.4f", megh_ms.mean()), strf("%.4f", megh_ms.stddev()),
                 strf("%.4f", megh_ms.max())});
    rows.push_back({std::to_string(size), strf("%.3f", thr_ms.mean()),
                    strf("%.3f", megh_ms.mean()),
                    strf("%.1fx", megh_ms.mean() > 0
                                      ? thr_ms.mean() / megh_ms.mean()
                                      : 0.0)});
    std::printf("  m = n = %-4d  THR-MMT %.3f ms/step   Megh %.3f ms/step\n",
                size, thr_ms.mean(), megh_ms.mean());
  }

  print_table("Figure 6 — per-step execution time (ms)",
              {"m = n", "THR-MMT", "Megh", "THR/Megh"}, rows);

  // Shape check: Megh's growth from smallest to largest cell must be slower
  // than THR-MMT's.
  const double thr_growth =
      parse_double(rows.back()[1], "thr") / parse_double(rows.front()[1], "thr");
  const double megh_growth = parse_double(rows.back()[2], "megh") /
                             parse_double(rows.front()[2], "megh");
  std::printf("\nshape check: Megh scales flatter than THR-MMT: %s "
              "(growth %.1fx vs %.1fx)\n",
              megh_growth < thr_growth ? "PASS" : "FAIL", megh_growth,
              thr_growth);
  std::printf("wrote %s\n",
              (bench_output_dir() / "fig6_scalability.csv").c_str());
  return 0;
}
