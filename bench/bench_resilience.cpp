// Resilience extension (no paper artifact): Megh and the MMT baselines
// under increasing fault pressure from the chaos subsystem (src/chaos).
//
// Three fault levels share one scenario: none (plus a zero-rate plan that
// must be decision-identical to running without any plan — the chaos
// layer's identity contract), low, and full. At each nonzero level a
// recovery-enabled Megh (down-host masking, SARSA remap of failed actions,
// retry-with-backoff) is compared against a fault-unaware Megh and
// THR-MMT. Shape to show: the zero-rate plan changes nothing, faults
// actually land, and recovery does not lose SLA ground to fault-blind
// Megh under the full fault scenario.
#include "baselines/mmt_policy.hpp"
#include "chaos/fault_plan.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "core/megh_policy.hpp"
#include "harness/experiment_registry.hpp"
#include "metrics/convergence.hpp"

namespace megh {
namespace {

struct FaultLevel {
  const char* name;
  /// Decorrelates this level's fault schedule from the run seed and from
  /// the other levels' schedules.
  std::uint64_t salt;
  double abort_rate;
  double host_failure_rate;
  double degradation_rate;
  double trace_gap_rate;
};

constexpr FaultLevel kLevels[] = {
    {"low", 0x10c4u, 0.05, 0.002, 0.02, 0.01},
    {"full", 0xf011u, 0.25, 0.010, 0.05, 0.02},
};

std::shared_ptr<const FaultPlan> compile_level(const FaultLevel& level,
                                               std::uint64_t seed,
                                               int hosts, int steps) {
  FaultPlanConfig config;
  config.enabled = true;
  config.seed = seed;
  config.migration_abort_rate = level.abort_rate;
  config.host_failure_rate = level.host_failure_rate;
  config.network_degradation_rate = level.degradation_rate;
  config.trace_gap_rate = level.trace_gap_rate;
  return std::make_shared<const FaultPlan>(
      FaultPlan::compile(config, hosts, steps));
}

std::function<std::unique_ptr<MigrationPolicy>()> make_megh(
    std::uint64_t seed, bool recovery) {
  return [seed, recovery] {
    MeghConfig config;
    config.seed = seed;
    config.max_migration_fraction = 0.1;
    if (recovery) {
      config.recovery.enabled = true;
      config.recovery.mask_down_hosts = true;
      config.recovery.max_retries = 2;
      config.recovery.retry_backoff_steps = 1;
      // Retry only SLA-relevant aborts: the VM is still stuck on an
      // overloaded source. Re-driving consolidation moves just adds
      // migration downtime.
      config.recovery.retry_min_utilization = 0.9;
    }
    return std::make_unique<MeghPolicy>(config);
  };
}

ExperimentSpec resilience_spec() {
  ExperimentSpec spec;
  spec.name = "resilience";
  spec.paper_ref = "—";
  spec.title = "Resilience — fault injection & recovery (extension)";
  spec.paper_claim =
      "A zero-rate fault plan is decision-identical to a fault-free run, "
      "and Megh with recovery holds SLA cost at or below fault-unaware "
      "Megh under the full fault scenario";
  spec.order = 95;
  spec.params = {
      {"hosts", 60, 200, 16, "PM count"},
      {"vms", 90, 280, 24, "VM count"},
      {"steps", 288, 1008, 60, "5-minute steps"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    const int hosts = scale.get_int("hosts");
    const int vms = scale.get_int("vms");
    const int steps = scale.get_int("steps");
    ExperimentPlan plan;
    plan.scenarios.push_back(
        make_planetlab_scenario(hosts, vms, steps, seed));

    const auto add_cell = [&](std::string label, std::string group,
                              std::function<std::unique_ptr<MigrationPolicy>()>
                                  make,
                              double cap,
                              std::shared_ptr<const FaultPlan> faults,
                              double abort_rate, double recovery) {
      CellSpec cell;
      cell.label = std::move(label);
      cell.group = std::move(group);
      cell.rng_stream = seed;
      cell.make = std::move(make);
      cell.options.max_migration_fraction = cap;
      cell.options.faults = std::move(faults);
      cell.params["abort_rate"] = abort_rate;
      cell.params["recovery"] = recovery;
      plan.cells.push_back(std::move(cell));
    };

    // Identity pair: no plan at all vs an attached zero-rate plan with the
    // full recovery machinery armed. Decision columns must match exactly.
    add_cell("Megh", "none", make_megh(seed, false), 0.1, nullptr, 0.0, 0.0);
    FaultPlanConfig zero;
    zero.enabled = true;
    zero.seed = seed ^ 0x5eedfau;
    add_cell("Megh/zero", "zero", make_megh(seed, true), 0.1,
             std::make_shared<const FaultPlan>(
                 FaultPlan::compile(zero, hosts, steps)),
             0.0, 1.0);

    for (const FaultLevel& level : kLevels) {
      // One compiled plan per level, shared by every cell at that level so
      // all policies face the identical fault schedule.
      const std::shared_ptr<const FaultPlan> faults =
          compile_level(level, seed ^ level.salt, hosts, steps);
      const std::string suffix = std::string("/") + level.name;
      add_cell("Megh+recovery" + suffix, level.name, make_megh(seed, true),
               0.1, faults, level.abort_rate, 1.0);
      add_cell("Megh-norecovery" + suffix, level.name,
               make_megh(seed, false), 0.1, faults, level.abort_rate, 0.0);
      add_cell("THR-MMT" + suffix, level.name,
               [seed] { return make_thr_mmt(0.7, seed); }, 0.0, faults,
               level.abort_rate, 0.0);
    }
    return plan;
  };
  spec.report.summary_csv = "resilience";
  spec.report.series_csv = "";
  spec.report.convergence = true;
  spec.report.convergence_note =
      "convergence under faults (recovery should not slow Megh down):";
  // Convergence columns for results.json: computed per cell so downstream
  // tooling gets energy/SLA (totals) plus learning speed in one record.
  spec.post = [](const ExperimentPlan&, ExperimentOutput& output) {
    for (CellResult& cell : output.cells) {
      const std::vector<double> cost = cell.result.sim.series("step_cost");
      const auto conv = convergence_step(cost);
      cell.derived["convergence_step"] =
          conv ? static_cast<double>(*conv)
               : static_cast<double>(cost.size());
      cell.derived["stable_cost"] = tail_mean(
          cost, conv.value_or(static_cast<int>(cost.size()) / 2));
    }
  };
  spec.checks = {
      {.description =
           "zero-rate fault plan is decision-identical to no plan",
       .custom =
           [](const ExperimentOutput& output) {
             const CellResult* base = output.find("Megh");
             const CellResult* zero = output.find("Megh/zero");
             MEGH_REQUIRE(base != nullptr && zero != nullptr,
                          "resilience: identity cells missing");
             const SimulationTotals& a = base->result.sim.totals;
             const SimulationTotals& b = zero->result.sim.totals;
             CheckOutcome outcome;
             const bool identical =
                 a.migrations == b.migrations &&
                 a.total_cost_usd == b.total_cost_usd &&
                 a.energy_cost_usd == b.energy_cost_usd &&
                 a.sla_cost_usd == b.sla_cost_usd &&
                 a.mean_active_hosts == b.mean_active_hosts;
             outcome.status = identical ? CheckOutcome::Status::kPass
                                        : CheckOutcome::Status::kFail;
             outcome.detail = strf(
                 "migrations %lld vs %lld, cost %.10g vs %.10g USD",
                 a.migrations, b.migrations, a.total_cost_usd,
                 b.total_cost_usd);
             return outcome;
           }},
      {.description = "full fault plan actually injects faults",
       .custom =
           [](const ExperimentOutput& output) {
             const CellResult* cell = output.find("Megh+recovery/full");
             MEGH_REQUIRE(cell != nullptr,
                          "resilience: full-level cell missing");
             const SimulationTotals& t = cell->result.sim.totals;
             CheckOutcome outcome;
             outcome.status = t.fault_events > 0
                                  ? CheckOutcome::Status::kPass
                                  : CheckOutcome::Status::kFail;
             outcome.detail = strf(
                 "fault_events=%lld aborted=%lld evacuations=%lld",
                 t.fault_events, t.aborted_migrations, t.forced_evacuations);
             return outcome;
           }},
      {.description =
           "recovery holds SLA cost at or below fault-unaware Megh (full "
           "faults)",
       .metric = "sla_cost_usd",
       .lhs = "Megh+recovery/full",
       .rhs = "Megh-norecovery/full",
       .relation = CheckRelation::kLessEq,
       .expected_at_reduced_scale = true},
  };
  return spec;
}

const ExperimentRegistrar registrar(resilience_spec());

}  // namespace
}  // namespace megh
