// Shared post-hook helpers for the per-step series figures (Figs 2–3):
// the four-panel stdout summary and the cumulative-migrations shape check.
#pragma once

#include <cstdio>
#include <string>

#include "common/string_util.hpp"
#include "harness/experiment_spec.hpp"
#include "metrics/convergence.hpp"
#include "metrics/running_stats.hpp"

namespace megh::bench {

/// Panel (a)-(d) summary lines for every cell of a series figure.
inline void print_panel_summaries(const ExperimentOutput& output) {
  std::printf("\npanel summaries:\n");
  for (const CellResult& cell : output.cells) {
    const auto cost = cell.result.sim.series("step_cost");
    const auto conv = convergence_step(cost);
    RunningStats tail;
    const int from = conv.value_or(static_cast<int>(cost.size()) / 2);
    for (std::size_t i = static_cast<std::size_t>(from); i < cost.size();
         ++i) {
      tail.add(cost[i]);
    }
    std::printf(
        "  %-8s (a) converges at %s, stable cost %.3f ± %.3f USD/step\n",
        cell.label.c_str(), conv ? std::to_string(*conv).c_str() : "never",
        tail.mean(), tail.stddev());
    std::printf("           (b) total migrations %lld  (c) mean active hosts "
                "%.1f  (d) exec %.3f ms/step\n",
                cell.result.sim.totals.migrations,
                cell.result.sim.totals.mean_active_hosts,
                cell.result.sim.totals.mean_exec_ms);
  }
}

/// Panel (b): lhs's cumulative migration curve stays below rhs's at every
/// step (after a short warm-up).
inline CheckOutcome cumulative_migrations_below(const ExperimentOutput& output,
                                                const std::string& lhs,
                                                const std::string& rhs) {
  const CellResult* a = output.find(lhs);
  const CellResult* b = output.find(rhs);
  double a_cum = 0, b_cum = 0;
  bool below = true;
  const auto& a_steps = a->result.sim.steps;
  const auto& b_steps = b->result.sim.steps;
  for (std::size_t i = 0; i < a_steps.size() && i < b_steps.size(); ++i) {
    a_cum += a_steps[i].migrations;
    b_cum += b_steps[i].migrations;
    if (a_cum > b_cum && i > 10) below = false;
  }
  CheckOutcome outcome;
  outcome.status =
      below ? CheckOutcome::Status::kPass : CheckOutcome::Status::kFail;
  outcome.detail = strf("final cumulative: %s %.0f vs %s %.0f", lhs.c_str(),
                        a_cum, rhs.c_str(), b_cum);
  return outcome;
}

}  // namespace megh::bench
