// Figure 1 reproduction: (a) PlanetLab workload dynamics — per-step
// mean/std/min/max of CPU utilization across VMs; (b) Google Cluster task
// duration distribution on a log scale. Also prints the Cullen–Frey
// nearest-family distances backing the paper's "no standard distribution"
// claim (Sec. 6.2).
//
// This spec has no policy cells — it characterizes the workloads the other
// experiments run on, so everything happens in the post hook over the
// plan's two scenarios.
#include <cstdio>

#include "common/csv.hpp"
#include "harness/experiment_registry.hpp"
#include "harness/report.hpp"
#include "metrics/histogram.hpp"
#include "metrics/timeseries.hpp"
#include "trace/trace_stats.hpp"

namespace megh {
namespace {

ExperimentSpec fig1_spec() {
  ExperimentSpec spec;
  spec.name = "fig1";
  spec.paper_ref = "Figure 1";
  spec.title = "Figure 1 — workload dynamics and task-duration distribution";
  spec.paper_claim =
      "PlanetLab: mean ~12%, std ~34%, per-instant range ~5-90%; Google "
      "task durations span 10^1..10^6 s and match no standard distribution";
  spec.order = 10;
  // The workload characterization is cheap, so reduced already runs the
  // paper-sized traces; only the CI smoke tier shrinks them.
  spec.params = {
      {"pl_hosts", 800, 800, 100, "PlanetLab PM count"},
      {"pl_vms", 1052, 1052, 150, "PlanetLab VM count"},
      {"gg_hosts", 500, 500, 100, "Google PM count"},
      {"gg_vms", 2000, 2000, 300, "Google VM count"},
      {"steps", 2016, 2016, 288, "5-minute steps"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    ExperimentPlan plan;
    plan.scenarios.push_back(make_planetlab_scenario(
        scale.get_int("pl_hosts"), scale.get_int("pl_vms"),
        scale.get_int("steps"), seed));
    plan.scenarios.push_back(make_google_scenario(
        scale.get_int("gg_hosts"), scale.get_int("gg_vms"),
        scale.get_int("steps"), seed + 1));
    return plan;
  };
  spec.post = [](const ExperimentPlan& plan, ExperimentOutput& output) {
    // ---- Fig 1(a): PlanetLab dynamics ----
    const Scenario& pl = plan.scenarios[0];
    const StepAggregates agg = compute_step_aggregates(pl.trace);
    const TraceSummary summary = summarize_trace(pl.trace);

    std::printf("\nFig 1(a) PlanetLab-like trace (%d VMs x %d steps)\n",
                pl.trace.num_vms(), pl.trace.num_steps());
    std::printf("  grand mean utilization : %.1f%%   (paper ~12%%)\n",
                100.0 * summary.mean);
    std::printf("  grand std deviation    : %.1f%%   (paper ~34%%)\n",
                100.0 * summary.stddev);
    std::printf("  mean per-step max      : %.1f%%   (paper ~90%%)\n",
                100.0 * summary.mean_step_max);
    std::printf("  mean per-step min      : %.1f%%   (paper ~5%%)\n",
                100.0 * summary.mean_step_min);
    std::printf("  Cullen-Frey            : skew^2=%.2f kurtosis=%.2f, "
                "nearest family '%s' at distance %.2f (large = "
                "non-parametric)\n",
                summary.cullen_frey.squared_skewness,
                summary.cullen_frey.kurtosis, summary.nearest.family.c_str(),
                summary.nearest.distance);

    TimeSeries fig1a;
    for (std::size_t i = 0; i < agg.mean.size(); ++i) {
      fig1a.push("mean", agg.mean[i]);
      fig1a.push("stddev", agg.stddev[i]);
      fig1a.push("min", agg.min[i]);
      fig1a.push("max", agg.max[i]);
    }
    const auto path_a = bench_output_dir() / "fig1a_planetlab_dynamics.csv";
    fig1a.write_csv(path_a);

    // ---- Fig 1(b): Google task durations ----
    const Scenario& gg = plan.scenarios[1];
    Histogram hist = Histogram::logarithmic(10.0, 1e6, 12);
    for (double d : gg.task_durations_s) hist.add(d);
    std::printf("\nFig 1(b) Google-like task durations (%zu tasks)\n%s",
                gg.task_durations_s.size(), hist.ascii(48).c_str());

    const TraceSummary gs = summarize_trace(gg.trace);
    std::printf("  trace mean utilization : %.1f%% (low, task-structured)\n",
                100.0 * gs.mean);
    std::printf("  Cullen-Frey nearest    : '%s' at distance %.2f\n",
                gs.nearest.family.c_str(), gs.nearest.distance);

    const auto path_b = bench_output_dir() / "fig1b_google_durations.csv";
    CsvWriter csv(path_b);
    csv.header({"bin_lo_s", "bin_hi_s", "count", "fraction"});
    for (int b = 0; b < hist.num_bins(); ++b) {
      csv.row({hist.bin_lo(b), hist.bin_hi(b),
               static_cast<double>(hist.count(b)), hist.fraction(b)});
    }
    record_artifact(output, path_a.string());
    record_artifact(output, path_b.string());
  };
  return spec;
}

const ExperimentRegistrar registrar(fig1_spec());

}  // namespace
}  // namespace megh
