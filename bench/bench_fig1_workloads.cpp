// Figure 1 reproduction: (a) PlanetLab workload dynamics — per-step
// mean/std/min/max of CPU utilization across VMs; (b) Google Cluster task
// duration distribution on a log scale. Also prints the Cullen–Frey
// nearest-family distances backing the paper's "no standard distribution"
// claim (Sec. 6.2).
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "metrics/histogram.hpp"
#include "metrics/timeseries.hpp"
#include "trace/trace_stats.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Figure 1 — workload dynamics and task-duration distribution",
      "PlanetLab: mean ~12%, std ~34%, per-instant range ~5-90%; Google "
      "task durations span 10^1..10^6 s and match no standard distribution");

  // ---- Fig 1(a): PlanetLab dynamics ----
  const Scenario pl = make_planetlab_scenario(800, 1052, 2016, seed);
  const StepAggregates agg = compute_step_aggregates(pl.trace);
  const TraceSummary summary = summarize_trace(pl.trace);

  std::printf("\nFig 1(a) PlanetLab-like trace (%d VMs x %d steps)\n",
              pl.trace.num_vms(), pl.trace.num_steps());
  std::printf("  grand mean utilization : %.1f%%   (paper ~12%%)\n",
              100.0 * summary.mean);
  std::printf("  grand std deviation    : %.1f%%   (paper ~34%%)\n",
              100.0 * summary.stddev);
  std::printf("  mean per-step max      : %.1f%%   (paper ~90%%)\n",
              100.0 * summary.mean_step_max);
  std::printf("  mean per-step min      : %.1f%%   (paper ~5%%)\n",
              100.0 * summary.mean_step_min);
  std::printf("  Cullen-Frey            : skew^2=%.2f kurtosis=%.2f, "
              "nearest family '%s' at distance %.2f (large = non-parametric)\n",
              summary.cullen_frey.squared_skewness, summary.cullen_frey.kurtosis,
              summary.nearest.family.c_str(), summary.nearest.distance);

  TimeSeries fig1a;
  for (std::size_t i = 0; i < agg.mean.size(); ++i) {
    fig1a.push("mean", agg.mean[i]);
    fig1a.push("stddev", agg.stddev[i]);
    fig1a.push("min", agg.min[i]);
    fig1a.push("max", agg.max[i]);
  }
  fig1a.write_csv(bench_output_dir() / "fig1a_planetlab_dynamics.csv");

  // ---- Fig 1(b): Google task durations ----
  const Scenario gg = make_google_scenario(500, 2000, 2016, seed + 1);
  Histogram hist = Histogram::logarithmic(10.0, 1e6, 12);
  for (double d : gg.task_durations_s) hist.add(d);
  std::printf("\nFig 1(b) Google-like task durations (%zu tasks)\n%s",
              gg.task_durations_s.size(), hist.ascii(48).c_str());

  const TraceSummary gs = summarize_trace(gg.trace);
  std::printf("  trace mean utilization : %.1f%% (low, task-structured)\n",
              100.0 * gs.mean);
  std::printf("  Cullen-Frey nearest    : '%s' at distance %.2f\n",
              gs.nearest.family.c_str(), gs.nearest.distance);

  CsvWriter csv(bench_output_dir() / "fig1b_google_durations.csv");
  csv.header({"bin_lo_s", "bin_hi_s", "count", "fraction"});
  for (int b = 0; b < hist.num_bins(); ++b) {
    csv.row({hist.bin_lo(b), hist.bin_hi(b),
             static_cast<double>(hist.count(b)), hist.fraction(b)});
  }
  std::printf("\nwrote %s and %s\n",
              (bench_output_dir() / "fig1a_planetlab_dynamics.csv").c_str(),
              (bench_output_dir() / "fig1b_google_durations.csv").c_str());
  return 0;
}
