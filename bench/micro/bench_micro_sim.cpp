// Micro-benchmarks for the simulation step loop (google-benchmark): the
// per-interval cost that Tables 2/3 aggregate and Figure 6 scales — the
// engine's accounting around the policy, and full end-to-end steps.
//
// BM_DatacenterAccounting and BM_SimStep are written against the oldest
// common Datacenter/Simulation API so the same benchmarks build on older
// trees; the sharded benchmarks below use SimulationConfig::jobs, whose
// jobs = 1 row is the serial baseline (bit-identical decisions, so the
// comparison is pure wall-clock).
//
//   * BM_DatacenterAccounting — one interval's engine-side accounting with
//     no policy at all: demand refresh, per-host utilization, overload
//     scan, power integration, active-host count. This is what the O(1)
//     cached-demand accounting accelerates.
//   * BM_SimStep — full Simulation::run steps under the Megh policy at the
//     paper's PlanetLab shape (m hosts, n = ceil(1.315 m) VMs; 800/1052 at
//     the top size). Time is per benchmark iteration of kStepsPerRun steps;
//     items/s is steps/s.
//   * BM_SimStepSharded — the pod-sharded step at datacenter scale: Megh on
//     a fat-tree fabric at {hosts, jobs} (2k and 10k hosts, 1–8 workers).
//     jobs = 1 is the serial baseline the speedup column divides by;
//     decisions are bit-identical at every jobs value, so only wall-clock
//     moves.
//   * BM_SimStepEngine100k — engine-only (NoMigration) steps at 100k hosts:
//     the accounting scale ceiling, where the per-pod shards are the only
//     thing between the step and a 100k-host serial scan.
//   * BM_MeghDecideSharded — the hierarchical two-level Megh at {hosts,
//     jobs}: per-pod learners decided AND updated inside the pod shards, so
//     the policy's decide/update work — the dominant serial remainder
//     behind the engine scans — rides the same worker pool. jobs = 1 is
//     the baseline; decisions are bit-identical at every jobs value
//     (tests/core/test_hierarchical_megh.cpp).
//   * BM_HierMegh100k — the headline: hierarchical Megh end-to-end (policy
//     included) at 100k hosts / 1M VMs, infeasible for the flat N×M
//     learner. Reports max_rss_mb (VmHWM) so the Σ_p O(N_p × M_p) memory
//     claim is a measured number, not an argument.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/simple_policies.hpp"
#include "core/hierarchical_megh.hpp"
#include "core/megh_policy.hpp"
#include "harness/scenario.hpp"
#include "sim/cost_model.hpp"
#include "sim/host_spec.hpp"
#include "sim/network.hpp"

namespace megh {
namespace {

int vms_for_hosts(int hosts) {
  // The paper's PlanetLab ratio: 1052 VMs on 800 PMs.
  return static_cast<int>(std::ceil(static_cast<double>(hosts) * 1052.0 /
                                    800.0));
}

void BM_DatacenterAccounting(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const int vms = vms_for_hosts(hosts);
  const Scenario scenario = make_planetlab_scenario(hosts, vms, 16, 9);
  Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 2);
  const CostConfig cost;
  std::vector<double> vm_util(static_cast<std::size_t>(dc.num_vms()));
  int step = 0;
  double sink = 0.0;
  for (auto _ : state) {
    for (int vm = 0; vm < dc.num_vms(); ++vm) {
      vm_util[static_cast<std::size_t>(vm)] = scenario.trace.at(vm, step);
    }
    dc.set_demands(vm_util);
    const std::vector<double> host_util = dc.all_host_utilization();
    int overloaded = 0;
    for (int h = 0; h < dc.num_hosts(); ++h) {
      if (!dc.is_active(h)) continue;
      if (dc.host_utilization(h) > cost.beta_overload) ++overloaded;
    }
    sink += datacenter_power_watts(dc);
    sink += host_util[0] + overloaded + dc.active_host_count();
    step = (step + 1) % scenario.trace.num_steps();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatacenterAccounting)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

constexpr int kStepsPerRun = 30;

void BM_SimStep(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const int vms = vms_for_hosts(hosts);
  const Scenario scenario =
      make_planetlab_scenario(hosts, vms, kStepsPerRun, 9);
  const SimulationConfig config = default_sim_config(0.02);
  for (auto _ : state) {
    state.PauseTiming();
    Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 2);
    MeghConfig megh_config;
    megh_config.seed = 7;
    MeghPolicy policy(megh_config);
    Simulation sim(std::move(dc), scenario.trace, config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run(policy, kStepsPerRun));
  }
  state.SetItemsProcessed(state.iterations() * kStepsPerRun);
}
BENCHMARK(BM_SimStep)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_SimStepSharded(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const int jobs = static_cast<int>(state.range(1));
  const int vms = vms_for_hosts(hosts);
  // Fewer steps per iteration at the big sizes: the measurement is per-step
  // anyway (items/s) and trace/datacenter setup is paused out.
  const int steps = hosts >= 10'000 ? 5 : kStepsPerRun;
  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, 9);
  SimulationConfig config = default_sim_config(0.02);
  config.network = std::make_shared<const FatTreeTopology>(
      FatTreeTopology::for_hosts(hosts));
  config.jobs = jobs;
  for (auto _ : state) {
    state.PauseTiming();
    Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 2);
    MeghConfig megh_config;
    megh_config.seed = 7;
    MeghPolicy policy(megh_config);
    Simulation sim(std::move(dc), scenario.trace, config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run(policy, steps));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_SimStepSharded)
    ->Args({2'000, 1})
    ->Args({2'000, 2})
    ->Args({2'000, 4})
    ->Args({2'000, 8})
    ->Args({10'000, 1})
    ->Args({10'000, 2})
    ->Args({10'000, 4})
    ->Args({10'000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SimStepEngine100k(benchmark::State& state) {
  const int hosts = 100'000;
  const int jobs = static_cast<int>(state.range(0));
  const int vms = vms_for_hosts(hosts);
  const int steps = 3;
  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, 9);
  SimulationConfig config = default_sim_config(0.0);
  config.network = std::make_shared<const FatTreeTopology>(
      FatTreeTopology::for_hosts(hosts));
  config.jobs = jobs;
  for (auto _ : state) {
    state.PauseTiming();
    Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 2);
    NoMigrationPolicy policy;
    Simulation sim(std::move(dc), scenario.trace, config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run(policy, steps));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_SimStepEngine100k)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Peak resident set (VmHWM) in MiB; 0 where /proc is unavailable.
double max_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::stod(line.substr(6)) / 1024.0;
    }
  }
  return 0.0;
}

void BM_MeghDecideSharded(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const int jobs = static_cast<int>(state.range(1));
  const int vms = vms_for_hosts(hosts);
  const int steps = hosts >= 10'000 ? 5 : kStepsPerRun;
  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, 9);
  SimulationConfig config = default_sim_config(0.02);
  const auto fabric = std::make_shared<const FatTreeTopology>(
      FatTreeTopology::for_hosts(hosts));
  config.network = fabric;
  config.jobs = jobs;
  for (auto _ : state) {
    state.PauseTiming();
    Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 2);
    HierarchicalMeghConfig hier_config;
    hier_config.base.seed = 7;
    hier_config.network = fabric;
    HierarchicalMeghPolicy policy(hier_config);
    Simulation sim(std::move(dc), scenario.trace, config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run(policy, steps));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_MeghDecideSharded)
    ->Args({2'000, 1})
    ->Args({2'000, 2})
    ->Args({2'000, 4})
    ->Args({2'000, 8})
    ->Args({10'000, 1})
    ->Args({10'000, 2})
    ->Args({10'000, 4})
    ->Args({10'000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_HierMegh100k(benchmark::State& state) {
  const int hosts = 100'000;
  const int vms = 1'000'000;  // 10 VMs/PM: the cluster-scale shape
  const int jobs = static_cast<int>(state.range(0));
  const int steps = 3;
  Scenario scenario = make_planetlab_scenario(hosts, vms, steps, 9);
  // The paper's 4-GB ProLiants hold ~1.3 of its VMs each; a 1M-VM fleet on
  // 100k PMs needs cluster-class nodes. Scale the host capacity 16x (64 GB
  // RAM, 10 GbE) and keep the VM specs and traces paper-shaped.
  for (HostSpec& h : scenario.hosts) {
    h.mips *= 16.0;
    h.ram_mb *= 16.0;
    h.bw_mbps *= 10.0;
  }
  SimulationConfig config = default_sim_config(0.02);
  const auto fabric = std::make_shared<const FatTreeTopology>(
      FatTreeTopology::for_hosts(hosts));
  config.network = fabric;
  config.jobs = jobs;
  std::int64_t total_dim = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 2);
    HierarchicalMeghConfig hier_config;
    hier_config.base.seed = 7;
    hier_config.network = fabric;
    HierarchicalMeghPolicy policy(hier_config);
    Simulation sim(std::move(dc), scenario.trace, config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run(policy, steps));
    state.PauseTiming();
    total_dim = 0;
    for (int p = 0; p < policy.num_pods(); ++p) {
      total_dim += policy.pod_learner(p).dim();
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * steps);
  state.counters["max_rss_mb"] = max_rss_mb();
  state.counters["sum_pod_dim"] = static_cast<double>(total_dim);
}
BENCHMARK(BM_HierMegh100k)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace megh

BENCHMARK_MAIN();
