// Micro-benchmarks (google-benchmark): the Sec. 5.2 complexity claims in
// isolation — a Sherman–Morrison step on the sparse structure is
// near-constant time regardless of d, while dense inversion is O(d³) and a
// dense Sherman–Morrison update O(d²).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/lspi.hpp"
#include "linalg/sherman_morrison.hpp"

namespace megh {
namespace {

void BM_SparseUnitShermanMorrison(benchmark::State& state) {
  const std::int64_t d = state.range(0);
  LspiLearner learner(d, 0.5);
  Rng rng(1);
  for (auto _ : state) {
    const auto a =
        static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(d)));
    const auto b =
        static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(d)));
    learner.update(a, 1.0, b);
    benchmark::DoNotOptimize(learner.q_value(a));
  }
  state.SetLabel("qtable_nnz=" + std::to_string(learner.qtable_nnz()));
}
BENCHMARK(BM_SparseUnitShermanMorrison)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(841600);  // the paper's PlanetLab d = 1052 x 800

void BM_DenseShermanMorrison(benchmark::State& state) {
  const std::int64_t d = state.range(0);
  DenseMatrix B = DenseMatrix::identity(d, 1.0 / static_cast<double>(d));
  Rng rng(1);
  std::vector<double> u(static_cast<std::size_t>(d), 0.0);
  std::vector<double> v(static_cast<std::size_t>(d), 0.0);
  for (auto _ : state) {
    const auto a = rng.index(static_cast<std::size_t>(d));
    const auto b = rng.index(static_cast<std::size_t>(d));
    u.assign(static_cast<std::size_t>(d), 0.0);
    v.assign(static_cast<std::size_t>(d), 0.0);
    u[a] = 1.0;
    v[a] = 1.0;
    v[b] -= 0.5;
    sherman_morrison_update(B, u, v);
    benchmark::DoNotOptimize(B.at(0, 0));
  }
}
BENCHMARK(BM_DenseShermanMorrison)->Arg(1 << 6)->Arg(1 << 8)->Arg(1 << 10);

void BM_DenseFullInverse(benchmark::State& state) {
  const std::int64_t d = state.range(0);
  Rng rng(2);
  DenseMatrix m = DenseMatrix::identity(d, 2.0);
  for (std::int64_t i = 0; i < d; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      m.at(i, j) += rng.normal(0.0, 0.05);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.inverse());
  }
}
BENCHMARK(BM_DenseFullInverse)->Arg(1 << 5)->Arg(1 << 7)->Arg(1 << 8);

void BM_SparseMatrixRowExtraction(benchmark::State& state) {
  const std::int64_t d = 1 << 16;
  SparseMatrix m(d, 1.0 / static_cast<double>(d));
  Rng rng(3);
  for (int k = 0; k < state.range(0); ++k) {
    m.set(static_cast<SparseMatrix::Index>(rng.index(static_cast<std::size_t>(d))),
          static_cast<SparseMatrix::Index>(rng.index(static_cast<std::size_t>(d))),
          rng.normal());
  }
  for (auto _ : state) {
    const auto r = static_cast<SparseMatrix::Index>(
        rng.index(static_cast<std::size_t>(d)));
    benchmark::DoNotOptimize(m.row(r));
  }
}
BENCHMARK(BM_SparseMatrixRowExtraction)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace megh

BENCHMARK_MAIN();
