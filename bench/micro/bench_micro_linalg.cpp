// Micro-benchmarks (google-benchmark): the Sec. 5.2 complexity claims in
// isolation — a Sherman–Morrison step on the sparse structure is
// near-constant time regardless of d, while dense inversion is O(d³) and a
// dense Sherman–Morrison update O(d²).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "common/rng.hpp"
#include "core/lspi.hpp"
#include "linalg/sherman_morrison.hpp"

namespace megh {
namespace {

void BM_SparseUnitShermanMorrison(benchmark::State& state) {
  const std::int64_t d = state.range(0);
  LspiLearner learner(d, 0.5);
  Rng rng(1);
  for (auto _ : state) {
    const auto a =
        static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(d)));
    const auto b =
        static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(d)));
    learner.update(a, 1.0, b);
    benchmark::DoNotOptimize(learner.q_value(a));
  }
  state.SetLabel("qtable_nnz=" + std::to_string(learner.qtable_nnz()));
}
BENCHMARK(BM_SparseUnitShermanMorrison)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(841600);  // the paper's PlanetLab d = 1052 x 800

void BM_SparseRank1UnitFactors(benchmark::State& state) {
  // The rank-1 merge kernel in isolation, with the factor shape the LSPI
  // critic produces against a fresh model: u = (1/d)·e_a and
  // w = (1/d)·e_a − (γ/d)·e_b. Exercises the per-row sorted merge, the
  // diagonal update, and the sub-tolerance pruning path without the
  // extraction/θ machinery around it.
  const std::int64_t d = state.range(0);
  const double inv_d = 1.0 / static_cast<double>(d);
  SparseMatrix B(d, inv_d);
  Rng rng(4);
  SparseVector u(d), w(d);
  for (auto _ : state) {
    const auto a =
        static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(d)));
    const auto b =
        static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(d)));
    u.clear();
    u.push_back(a, inv_d);
    w.clear();
    if (a == b) {
      w.push_back(a, 0.5 * inv_d);
    } else {
      w.push_back(std::min(a, b), a < b ? inv_d : -0.5 * inv_d);
      w.push_back(std::max(a, b), a < b ? -0.5 * inv_d : inv_d);
    }
    B.rank1_update(u, w, -1.0);
    benchmark::DoNotOptimize(B.offdiag_nnz());
  }
  state.SetLabel("offdiag_nnz=" + std::to_string(B.offdiag_nnz()));
}
BENCHMARK(BM_SparseRank1UnitFactors)->Arg(1 << 18)->Arg(841600);

void BM_LspiUpdateBatch(benchmark::State& state) {
  // Per-step multi-action update: Megh closes every pending action against
  // the same greedy next action, so update_batch reuses B.row(b) and
  // software-pipelines the actions' random loads. Time is per batch;
  // items/s is per update — compare across batch sizes for the
  // amortization.
  const std::int64_t d = 841600;
  const auto batch = static_cast<std::size_t>(state.range(0));
  LspiLearner learner(d, 0.5);
  Rng rng(5);
  std::vector<std::int64_t> actions(batch);
  for (auto _ : state) {
    for (auto& a : actions) {
      a = static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(d)));
    }
    const auto b =
        static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(d)));
    learner.update_batch(actions, 1.0, b);
    benchmark::DoNotOptimize(learner.q_value(b));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_LspiUpdateBatch)->Arg(1)->Arg(4)->Arg(16);

void BM_DenseShermanMorrison(benchmark::State& state) {
  const std::int64_t d = state.range(0);
  DenseMatrix B = DenseMatrix::identity(d, 1.0 / static_cast<double>(d));
  Rng rng(1);
  std::vector<double> u(static_cast<std::size_t>(d), 0.0);
  std::vector<double> v(static_cast<std::size_t>(d), 0.0);
  for (auto _ : state) {
    const auto a = rng.index(static_cast<std::size_t>(d));
    const auto b = rng.index(static_cast<std::size_t>(d));
    u.assign(static_cast<std::size_t>(d), 0.0);
    v.assign(static_cast<std::size_t>(d), 0.0);
    u[a] = 1.0;
    v[a] = 1.0;
    v[b] -= 0.5;
    sherman_morrison_update(B, u, v);
    benchmark::DoNotOptimize(B.at(0, 0));
  }
}
BENCHMARK(BM_DenseShermanMorrison)->Arg(1 << 6)->Arg(1 << 8)->Arg(1 << 10);

void BM_DenseFullInverse(benchmark::State& state) {
  const std::int64_t d = state.range(0);
  Rng rng(2);
  DenseMatrix m = DenseMatrix::identity(d, 2.0);
  for (std::int64_t i = 0; i < d; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      m.at(i, j) += rng.normal(0.0, 0.05);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.inverse());
  }
}
BENCHMARK(BM_DenseFullInverse)->Arg(1 << 5)->Arg(1 << 7)->Arg(1 << 8);

void BM_SparseMatrixRowExtraction(benchmark::State& state) {
  const std::int64_t d = 1 << 16;
  SparseMatrix m(d, 1.0 / static_cast<double>(d));
  Rng rng(3);
  for (int k = 0; k < state.range(0); ++k) {
    m.set(static_cast<SparseMatrix::Index>(rng.index(static_cast<std::size_t>(d))),
          static_cast<SparseMatrix::Index>(rng.index(static_cast<std::size_t>(d))),
          rng.normal());
  }
  for (auto _ : state) {
    const auto r = static_cast<SparseMatrix::Index>(
        rng.index(static_cast<std::size_t>(d)));
    benchmark::DoNotOptimize(m.row(r));
  }
}
BENCHMARK(BM_SparseMatrixRowExtraction)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace megh

BENCHMARK_MAIN();
