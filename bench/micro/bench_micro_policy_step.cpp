// Micro-benchmark: a single decide() call per policy at growing fleet
// sizes — the per-step latency that Tables 2/3 and Figure 6 aggregate,
// measured in isolation with google-benchmark.
#include <benchmark/benchmark.h>

#include "baselines/madvm.hpp"
#include "baselines/mmt_policy.hpp"
#include "core/megh_policy.hpp"
#include "harness/scenario.hpp"

namespace megh {
namespace {

struct Setup {
  Scenario scenario;
  Datacenter dc;
  std::vector<double> vm_util;
  std::vector<double> host_util;
  SimulationConfig config;

  explicit Setup(int size)
      : scenario(make_planetlab_scenario(size, size, 4, 9)),
        dc(build_datacenter(scenario, InitialPlacement::kRandom, 2)),
        config(default_sim_config(0.02)) {
    vm_util.resize(static_cast<std::size_t>(dc.num_vms()));
    for (int vm = 0; vm < dc.num_vms(); ++vm) {
      vm_util[static_cast<std::size_t>(vm)] = scenario.trace.at(vm, 0);
    }
    dc.set_demands(vm_util);
    host_util = dc.all_host_utilization();
  }

  StepObservation observation() const {
    StepObservation obs;
    obs.step = 1;
    obs.interval_s = 300.0;
    obs.dc = &dc;
    obs.vm_util = vm_util;
    obs.host_util = host_util;
    obs.last_step_cost = 1.0;
    obs.cost = &config.cost;
    return obs;
  }
};

template <typename MakePolicy>
void run_decide_benchmark(benchmark::State& state, MakePolicy make_policy) {
  Setup setup(static_cast<int>(state.range(0)));
  auto policy = make_policy();
  policy->begin(setup.dc, setup.config.cost, 300.0);
  const StepObservation obs = setup.observation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->decide(obs));
    policy->observe_cost(1.0);
  }
}

void BM_MeghDecide(benchmark::State& state) {
  run_decide_benchmark(state, [] {
    return std::make_unique<MeghPolicy>(MeghConfig{});
  });
}
BENCHMARK(BM_MeghDecide)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void BM_ThrMmtDecide(benchmark::State& state) {
  run_decide_benchmark(state, [] { return make_thr_mmt(); });
}
BENCHMARK(BM_ThrMmtDecide)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void BM_MadVmDecide(benchmark::State& state) {
  run_decide_benchmark(state, [] {
    return std::make_unique<MadVmPolicy>(MadVmConfig{});
  });
}
BENCHMARK(BM_MadVmDecide)->Arg(100)->Arg(200);

}  // namespace
}  // namespace megh

BENCHMARK_MAIN();
