// Micro-benchmarks for the megh_serve daemon's hot path (google-benchmark):
// the per-step cost a served simulation pays on top of running the policy
// in-process, and the recovery replay rate that bounds restart time.
//
//   * BM_ServeDecide/{hosts}/{fsync} — one steady-state served step against
//     an in-process MeghServer over LocalTransport: a Decide round trip
//     (decode → WAL append → policy decide → encode) followed by the
//     matching Observe. fsync=1 adds the append-fdatasync before the ack,
//     so the pair is the durability price of crash-exact recovery; fsync=0
//     isolates the protocol + journaling CPU cost. items/s is served
//     steps/s; wal_bytes_per_step is the journal growth rate.
//   * BM_ServeCheckpoint/{hosts} — one compaction: atomic learner snapshot
//     write + WAL rotation + stale-segment GC, on a server that has taken
//     a handful of steps since the last snapshot.
//   * BM_ServeRecover/{steps} — cold-start recovery of a directory holding
//     one snapshot-free WAL with `steps` served steps (2 records each):
//     MeghServer construction in read-only mode replays the full tail.
//     items/s is replayed WAL records/s.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/host_spec.hpp"
#include "sim/placement.hpp"
#include "trace/planetlab_synth.hpp"

namespace megh::serve {
namespace {

int vms_for_hosts(int hosts) {
  // The paper's PlanetLab ratio: 1052 VMs on 800 PMs.
  return (hosts * 1052 + 799) / 800;
}

std::filesystem::path fresh_dir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("megh_bench_serve_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

InitRequest make_init(int hosts, int vms) {
  InitRequest req;
  req.interval_s = 300.0;
  req.config.seed = 7;
  req.hosts = standard_host_fleet(hosts);
  Rng rng(5);
  req.vms = sample_vm_fleet(vms, rng);
  // Capacity-respecting placement via the engine's own placer.
  Datacenter dc(req.hosts, req.vms);
  Rng prng(2);
  place_initial(dc, InitialPlacement::kRandom, prng);
  req.host_vms.resize(static_cast<std::size_t>(hosts));
  for (int v = 0; v < vms; ++v) {
    req.host_vms[static_cast<std::size_t>(dc.host_of(v))].push_back(v);
  }
  return req;
}

/// Mutable request state threaded through drive_steps so the placement we
/// report tracks the actions the served policy emits.
DecideRequest make_decide_scratch(const InitRequest& init) {
  DecideRequest req;
  const int vms = static_cast<int>(init.vms.size());
  req.vm_util.resize(static_cast<std::size_t>(vms));
  req.host_util.assign(init.hosts.size(), 0.5);
  req.host_of.resize(static_cast<std::size_t>(vms));
  for (std::size_t h = 0; h < init.host_vms.size(); ++h) {
    for (const int v : init.host_vms[h]) {
      req.host_of[static_cast<std::size_t>(v)] = static_cast<int>(h);
    }
  }
  return req;
}

/// Drive `steps` steady-state steps through `client`, starting at
/// `req.step`. Emitted actions are acknowledged as aborted — there is no
/// real engine here to arbitrate fit, and an aborted outcome keeps the
/// placement fixed while still exercising the full decode → journal →
/// learner-update path on both verbs.
void drive_steps(ServeClient& client, const TraceTable& trace,
                 DecideRequest& req, int steps) {
  const int vms = static_cast<int>(req.vm_util.size());
  ObserveRequest obs;
  obs.step_cost = 1.0;
  for (int i = 0; i < steps; ++i, ++req.step) {
    for (int v = 0; v < vms; ++v) {
      req.vm_util[static_cast<std::size_t>(v)] =
          trace.at(v, req.step % trace.num_steps());
    }
    req.last_step_cost = obs.step_cost;
    const DecideResponse resp = client.decide(req);
    obs.outcomes.clear();
    for (const MigrationAction& a : resp.actions) {
      MigrationOutcome o;
      o.vm = a.vm;
      o.target_host = a.target_host;
      o.verdict = MigrationVerdict::kAborted;
      obs.outcomes.push_back(o);
    }
    benchmark::DoNotOptimize(client.observe(obs));
  }
}

void BM_ServeDecide(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const bool fsync = state.range(1) != 0;
  const int vms = vms_for_hosts(hosts);
  const auto dir = fresh_dir("decide_" + std::to_string(hosts) +
                             (fsync ? "_sync" : "_nosync"));
  ServeOptions options;
  options.dir = dir;
  options.fsync = fsync;
  options.compact_every = 0;  // journaling cost only; no background worker
  MeghServer server(options);
  ServeClient client(std::make_shared<LocalTransport>(server));
  const InitRequest init = make_init(hosts, vms);
  client.init(init);
  PlanetLabSynthConfig tc;
  tc.num_vms = vms;
  tc.num_steps = 64;
  const TraceTable trace = generate_planetlab(tc);
  DecideRequest req = make_decide_scratch(init);
  for (auto _ : state) {
    drive_steps(client, trace, req, 1);
  }
  state.SetItemsProcessed(state.iterations());
  const WalStatusResponse ws = client.wal_status();
  state.counters["wal_bytes_per_step"] =
      req.step > 0 ? static_cast<double>(ws.wal_bytes) / req.step : 0.0;
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ServeDecide)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({800, 0})
    ->Args({800, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_ServeCheckpoint(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const int vms = vms_for_hosts(hosts);
  const auto dir = fresh_dir("ckpt_" + std::to_string(hosts));
  ServeOptions options;
  options.dir = dir;
  options.fsync = true;
  options.compact_every = 0;  // compaction happens only when we ask
  MeghServer server(options);
  ServeClient client(std::make_shared<LocalTransport>(server));
  const InitRequest init = make_init(hosts, vms);
  client.init(init);
  PlanetLabSynthConfig tc;
  tc.num_vms = vms;
  tc.num_steps = 64;
  const TraceTable trace = generate_planetlab(tc);
  DecideRequest req = make_decide_scratch(init);
  for (auto _ : state) {
    state.PauseTiming();
    drive_steps(client, trace, req, 4);
    state.ResumeTiming();
    benchmark::DoNotOptimize(client.checkpoint());
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ServeCheckpoint)
    ->Arg(100)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_ServeRecover(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  const int hosts = 100;
  const int vms = vms_for_hosts(hosts);
  const auto dir = fresh_dir("recover_" + std::to_string(steps));
  {
    ServeOptions options;
    options.dir = dir;
    options.fsync = false;
    options.compact_every = 0;
    MeghServer server(options);
    ServeClient client(std::make_shared<LocalTransport>(server));
    const InitRequest init = make_init(hosts, vms);
    client.init(init);
    PlanetLabSynthConfig tc;
    tc.num_vms = vms;
    tc.num_steps = 64;
    const TraceTable trace = generate_planetlab(tc);
    DecideRequest req = make_decide_scratch(init);
    drive_steps(client, trace, req, steps);
  }
  ServeOptions recover_options;
  recover_options.dir = dir;
  recover_options.read_only = true;  // replay without opening a new segment
  for (auto _ : state) {
    MeghServer recovered(recover_options);
    benchmark::DoNotOptimize(recovered.recovered_seq());
  }
  // 2 WAL records per served step (Decide + Observe).
  state.SetItemsProcessed(state.iterations() * steps * 2);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ServeRecover)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace megh::serve

BENCHMARK_MAIN();
