// Phase profiler for the sharded-step analysis recorded in
// bench_results/BENCH_sim.json: measures, at 10k hosts / 13150 VMs, the
// serial cost of each per-host phase the sharded step parallelizes
// (demand refresh, host utilization, settle accounting, candidate scans)
// against the full per-step wall-clock, giving the measured parallel
// fraction the JSON's Amdahl projection uses. Build the
// prof_sharded_phases target in Release and run it with the machine idle.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/candidates.hpp"
#include "core/megh_policy.hpp"
#include "harness/scenario.hpp"
#include "sim/cost_model.hpp"
#include "sim/sharding.hpp"
#include "sim/simulation.hpp"

using Clock = std::chrono::steady_clock;

static double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int main() {
  using namespace megh;
  const int hosts = 10'000;
  const int vms = 13'150;
  const int steps = 5;
  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, 9);
  const auto fabric = std::make_shared<const FatTreeTopology>(
      FatTreeTopology::for_hosts(hosts));

  Datacenter dc = build_datacenter(scenario, InitialPlacement::kRandom, 2);
  std::vector<double> vm_util(static_cast<std::size_t>(vms));
  std::vector<double> host_util(static_cast<std::size_t>(hosts));
  const CostConfig cost;
  const int reps = 20;

  // Demand refresh (alternate columns so the dirty-host cache can't
  // short-circuit repeated identical writes).
  double t_demands = 0.0;
  for (int r = 0; r < reps; ++r) {
    const int col = r % steps;
    for (int vm = 0; vm < vms; ++vm) {
      vm_util[static_cast<std::size_t>(vm)] = scenario.trace.at(vm, col);
    }
    const auto t0 = Clock::now();
    dc.set_demands(vm_util);
    t_demands += ms_since(t0);
  }
  t_demands /= reps;

  double t_host_util = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    dc.all_host_utilization(host_util);
    t_host_util += ms_since(t0);
  }
  t_host_util /= reps;

  // Settle accounting emulation: watts + overload scan per host.
  double t_account = 0.0;
  double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (int h = 0; h < hosts; ++h) {
      const PowerModel& power = dc.host_spec(h).power;
      const double watts = dc.is_active(h)
                               ? power.watts(std::min(1.0, dc.host_utilization(h)))
                               : power.sleep_watts();
      sink += watts;
      if (dc.is_active(h) && dc.host_utilization(h) > cost.beta_overload) {
        sink += 1.0;
      }
    }
    t_account += ms_since(t0);
  }
  t_account /= reps;

  // Full step, serial, and the policy's share of it.
  SimulationConfig config = default_sim_config(0.02);
  config.network = fabric;
  config.jobs = 1;
  Datacenter dc2 = build_datacenter(scenario, InitialPlacement::kRandom, 2);
  MeghConfig megh_config;
  megh_config.seed = 7;
  MeghPolicy policy(megh_config);
  Simulation sim(std::move(dc2), scenario.trace, config);
  const auto t0 = Clock::now();
  const SimulationResult result = sim.run(policy, steps);
  const double t_step = ms_since(t0) / steps;

  // Candidate generation, serial, against the same datacenter state the
  // in-run scans see (the post-run state — isolated fresh-placement state
  // has far more overloaded hosts and overstates the scan cost).
  const Datacenter& sim_dc = sim.datacenter();
  std::vector<double> sim_host_util = sim_dc.all_host_utilization();
  const ActionBasis basis(vms, hosts);
  CandidateConfig cand_config;
  CandidateScratch scratch;
  Rng rng(7);
  double t_candidates = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto tc = Clock::now();
    generate_candidates(sim_dc, sim_host_util, cost.beta_overload, basis,
                        cand_config, rng, scratch, fabric.get(), nullptr);
    t_candidates += ms_since(tc);
  }
  t_candidates /= reps;

  const double parallel_ms = t_demands + t_host_util + t_account + t_candidates;
  const double p = parallel_ms / t_step;
  const auto amdahl = [&](int n) { return 1.0 / ((1.0 - p) + p / n); };
  std::printf("hosts=%d vms=%d (sink %.1f)\n", hosts, vms, sink);
  std::printf("set_demands            %8.3f ms\n", t_demands);
  std::printf("all_host_utilization   %8.3f ms\n", t_host_util);
  std::printf("settle accounting      %8.3f ms\n", t_account);
  std::printf("candidate generation   %8.3f ms\n", t_candidates);
  std::printf("full step (serial)     %8.3f ms   mean exec_ms %.3f\n", t_step,
              result.totals.mean_exec_ms);
  std::printf("parallelizable         %8.3f ms   fraction p = %.3f\n",
              parallel_ms, p);
  std::printf("Amdahl projection: 2w %.2fx  4w %.2fx  8w %.2fx\n", amdahl(2),
              amdahl(4), amdahl(8));
  return 0;
}
