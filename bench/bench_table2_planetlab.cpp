// Table 2 reproduction: PlanetLab — total cost, #VM migrations, active
// hosts and per-step execution time for THR/IQR/MAD/LR/LRR-MMT and Megh.
//
// Paper (7 days, 800 PMs, 1052 VMs):
//   THR-MMT  cost 1347, migrations 325299, hosts 666, exec 2016 ms
//   IQR-MMT  cost 1504, migrations 444624, hosts 684, exec 3077 ms
//   MAD-MMT  cost 1367, migrations 331304, hosts 682, exec 2226 ms
//   LR-MMT   cost 1392, migrations 324079, hosts 692, exec 1924 ms
//   LRR-MMT  cost 1392, migrations 324079, hosts 692, exec 2080 ms
//   Megh     cost 1155, migrations   2309, hosts 203, exec 1426 ms
// Shape to reproduce: Megh cheapest (paper: −14% vs THR), orders of
// magnitude fewer migrations, smallest execution time among the six.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "metrics/convergence.hpp"

using namespace megh;

int main(int argc, char** argv) {
  Args args;
  bench::add_standard_flags(args);
  args.add_flag("hosts", "PM count (default scaled down; --full = 800)", "120");
  args.add_flag("vms", "VM count (--full = 1052)", "160");
  args.add_flag("steps", "5-minute steps (--full = 2016)", "576");
  if (!args.parse(argc, argv)) return 0;
  bench::configure_tracing(args);

  const bool full = bench::full_scale(args);
  const int hosts = full ? 800 : static_cast<int>(args.get_int("hosts"));
  const int vms = full ? 1052 : static_cast<int>(args.get_int("vms"));
  const int steps = full ? 2016 : static_cast<int>(args.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  bench::print_banner(
      "Table 2 — PlanetLab performance evaluation",
      "Megh reduces total cost by 14.25% vs THR-MMT with ~140x fewer "
      "migrations and the smallest per-step execution time");
  std::printf("configuration: %d PMs, %d VMs, %d steps%s\n", hosts, vms,
              steps, full ? " (paper scale)" : " (reduced; --full for paper)");

  const Scenario scenario = make_planetlab_scenario(hosts, vms, steps, seed);
  std::vector<ExperimentResult> results;
  for (const PolicyEntry& entry : paper_roster(seed)) {
    auto policy = entry.make();
    ExperimentOptions options;
    options.max_migration_fraction = entry.max_migration_fraction;
    results.push_back(run_experiment(scenario, *policy, options));
    std::printf("  %-8s done: cost %.0f USD, %lld migrations, %.3f ms/step\n",
                entry.name.c_str(), results.back().sim.totals.total_cost_usd,
                results.back().sim.totals.migrations,
                results.back().sim.totals.mean_exec_ms);
  }

  print_performance_table("Table 2 — PlanetLab", results, "table2_planetlab");
  write_series_csvs(results, "table2_series");
  std::printf("\nconvergence (paper: Megh ~100 steps, THR-MMT ~600):\n");
  for (const auto& r : results) {
    std::printf("  %s\n", convergence_summary(r).c_str());
  }

  // Headline shape checks printed as PASS/FAIL for quick eyeballing.
  const auto& thr = results.front().sim.totals;
  const auto& megh = results.back().sim.totals;
  std::printf("\nshape checks:\n");
  std::printf("  Megh cheaper than THR-MMT: %s (%.0f vs %.0f, %.1f%%)\n",
              megh.total_cost_usd < thr.total_cost_usd ? "PASS" : "FAIL",
              megh.total_cost_usd, thr.total_cost_usd,
              100.0 * (1.0 - megh.total_cost_usd / thr.total_cost_usd));
  std::printf("  Megh migrations << THR-MMT: %s (%lldx fewer)\n",
              megh.migrations * 5 < thr.migrations ? "PASS" : "FAIL",
              megh.migrations > 0 ? thr.migrations / megh.migrations : 0);
  // The exec-time crossover sits near 200 PMs (see Figure 6); at reduced
  // scale THR-MMT can still be faster in absolute terms.
  const bool exec_ok = megh.mean_exec_ms < thr.mean_exec_ms;
  std::printf("  Megh exec time below THR-MMT: %s (%.3f ms vs %.3f ms)\n",
              exec_ok ? "PASS" : (hosts < 200 ? "EXPECTED-AT-SCALE (see Fig 6)"
                                              : "FAIL"),
              megh.mean_exec_ms, thr.mean_exec_ms);
  return 0;
}
