// Table 2 reproduction: PlanetLab — total cost, #VM migrations, active
// hosts and per-step execution time for THR/IQR/MAD/LR/LRR-MMT and Megh.
//
// Paper (7 days, 800 PMs, 1052 VMs):
//   THR-MMT  cost 1347, migrations 325299, hosts 666, exec 2016 ms
//   IQR-MMT  cost 1504, migrations 444624, hosts 684, exec 3077 ms
//   MAD-MMT  cost 1367, migrations 331304, hosts 682, exec 2226 ms
//   LR-MMT   cost 1392, migrations 324079, hosts 692, exec 1924 ms
//   LRR-MMT  cost 1392, migrations 324079, hosts 692, exec 2080 ms
//   Megh     cost 1155, migrations   2309, hosts 203, exec 1426 ms
// Shape to reproduce: Megh cheapest (paper: −14% vs THR), orders of
// magnitude fewer migrations, smallest execution time among the six.
#include "harness/experiment_registry.hpp"

namespace megh {
namespace {

ExperimentSpec table2_spec() {
  ExperimentSpec spec;
  spec.name = "table2";
  spec.paper_ref = "Table 2";
  spec.title = "Table 2 — PlanetLab performance evaluation";
  spec.paper_claim =
      "Megh reduces total cost by 14.25% vs THR-MMT with ~140x fewer "
      "migrations and the smallest per-step execution time";
  spec.order = 20;
  spec.params = {
      {"hosts", 120, 800, 24, "PM count"},
      {"vms", 160, 1052, 36, "VM count"},
      {"steps", 576, 2016, 60, "5-minute steps"},
  };
  spec.plan = [](const ScaleValues& scale, std::uint64_t seed) {
    ExperimentPlan plan;
    plan.scenarios.push_back(make_planetlab_scenario(
        scale.get_int("hosts"), scale.get_int("vms"), scale.get_int("steps"),
        seed));
    for (const PolicyEntry& entry : paper_roster(seed)) {
      CellSpec cell;
      cell.label = entry.name;
      cell.rng_stream = seed;
      cell.make = entry.make;
      cell.options.max_migration_fraction = entry.max_migration_fraction;
      plan.cells.push_back(std::move(cell));
    }
    return plan;
  };
  spec.report.summary_csv = "table2_planetlab";
  spec.report.series_csv = "table2_series";
  spec.report.convergence = true;
  spec.report.convergence_note =
      "convergence (paper: Megh ~100 steps, THR-MMT ~600):";
  spec.checks = {
      {.description = "Megh cheaper than THR-MMT",
       .metric = "total_cost_usd",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kLess},
      {.description = "Megh migrations << THR-MMT (>5x fewer)",
       .metric = "migrations",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kLess,
       .rhs_scale = 0.2},
      // The exec-time crossover sits near 200 PMs (see Figure 6); at
      // reduced scale THR-MMT can still be faster in absolute terms.
      {.description = "Megh exec time below THR-MMT",
       .metric = "mean_exec_ms",
       .lhs = "Megh",
       .rhs = "THR-MMT",
       .relation = CheckRelation::kLess,
       .expected_at_reduced_scale = true},
  };
  return spec;
}

const ExperimentRegistrar registrar(table2_spec());

}  // namespace
}  // namespace megh
